package journal

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func BenchmarkAppend(b *testing.B) {
	j, err := Open(filepath.Join(b.TempDir(), "bench.log"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := map[string]any{"id": "job-123", "state": "running", "site": "wisc", "resubmits": 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append("job", rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	j, err := Open(filepath.Join(b.TempDir(), "bench.log"), Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := map[string]any{"id": "job-123", "state": "running"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append("job", rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay1000(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	j, _ := Open(path, Options{})
	for i := 0; i < 1000; i++ {
		j.Append("job", map[string]int{"n": i})
	}
	j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := Replay(path, func(Record) error { return nil })
		if err != nil || n != 1000 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	s, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%64), i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryReplay measures crash recovery of a store whose live
// journal holds one million deltas — the paper's "scheduler crashes are a
// fact of life" scale test — and isolates what hash-chain verification
// (SHA-256 per record) adds on top of frame CRCs by re-running unchained.
func BenchmarkRecoveryReplay(b *testing.B) {
	const records = 1 << 20
	for _, mode := range []struct {
		name    string
		noChain bool
	}{
		{"chained", false},
		{"unchained", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			// Build the journal directly (the store would rotate and fold it
			// into the snapshot long before a million records accumulate).
			j, err := Open(filepath.Join(dir, storeJournalFile), Options{NoChain: mode.noChain})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				d := storeDelta{Key: fmt.Sprintf("job-%06d", i%100000),
					Value: []byte(fmt.Sprintf(`{"n":%d,"s":"running"}`, i))}
				if err := j.Append(recSet, d); err != nil {
					b.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := OpenStore(dir)
				if err != nil {
					b.Fatal(err)
				}
				if s.Len() != 100000 {
					b.Fatalf("recovered %d keys", s.Len())
				}
				b.StopTimer()
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkStorePutDurableParallel isolates the group-commit win: many
// goroutines issue durable (fsynced) Puts concurrently. With group commit
// the batch shares one fsync; without it every delta pays its own.
func BenchmarkStorePutDurableParallel(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts StoreOptions
	}{
		{"nogroup", StoreOptions{Sync: true, NoGroupCommit: true}},
		{"group", StoreOptions{Sync: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := OpenStoreOptions(b.TempDir(), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var ctr atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					if err := s.Put(fmt.Sprintf("k%d", i%64), i); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "puts/s")
		})
	}
}
