package journal

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

func BenchmarkAppend(b *testing.B) {
	j, err := Open(filepath.Join(b.TempDir(), "bench.log"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := map[string]any{"id": "job-123", "state": "running", "site": "wisc", "resubmits": 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append("job", rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	j, err := Open(filepath.Join(b.TempDir(), "bench.log"), Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	rec := map[string]any{"id": "job-123", "state": "running"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append("job", rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay1000(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	j, _ := Open(path, Options{})
	for i := 0; i < 1000; i++ {
		j.Append("job", map[string]int{"n": i})
	}
	j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := Replay(path, func(Record) error { return nil })
		if err != nil || n != 1000 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	s, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%64), i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePutDurableParallel isolates the group-commit win: many
// goroutines issue durable (fsynced) Puts concurrently. With group commit
// the batch shares one fsync; without it every delta pays its own.
func BenchmarkStorePutDurableParallel(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts StoreOptions
	}{
		{"nogroup", StoreOptions{Sync: true, NoGroupCommit: true}},
		{"group", StoreOptions{Sync: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s, err := OpenStoreOptions(b.TempDir(), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var ctr atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					if err := s.Put(fmt.Sprintf("k%d", i%64), i); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "puts/s")
		})
	}
}
