package journal

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// pump drains the primary's stream into the follower until both heads match.
func pump(t *testing.T, p, f *Store) {
	t.Helper()
	after := f.ChainHead().Seq
	for {
		recs, head, reset := p.StreamSince(after, 64)
		if reset {
			t.Fatalf("follower at %d told to reset (primary head %d)", after, head.Seq)
		}
		for _, r := range recs {
			if err := f.ApplyReplica(r); err != nil {
				t.Fatalf("apply record %d: %v", r.Seq, err)
			}
			after = r.Seq
		}
		if after >= head.Seq {
			return
		}
	}
}

func storeDump(t *testing.T, s *Store) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, k := range s.Keys() {
		var p payload
		if found, err := s.Get(k, &p); err != nil || !found {
			t.Fatalf("get %s: found=%v err=%v", k, found, err)
		}
		out[k] = fmt.Sprintf("%d/%s", p.N, p.S)
	}
	return out
}

// TestStreamReplication drives the full follower lifecycle: bootstrap from a
// snapshot, tail the delta stream record by record, then take over — close,
// reopen from its own disk, and prove the replicated history verifies.
func TestStreamReplication(t *testing.T) {
	p, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 5; i++ {
		if err := p.Put(fmt.Sprintf("pre-%d", i), payload{N: i, S: "pre"}); err != nil {
			t.Fatal(err)
		}
	}

	fdir := t.TempDir()
	f, err := OpenStore(fdir)
	if err != nil {
		t.Fatal(err)
	}
	data, head := p.SnapshotDump()
	if err := f.InstallSnapshot(data, head); err != nil {
		t.Fatal(err)
	}
	if got := f.ChainHead(); got != head {
		t.Fatalf("bootstrap head %+v, want %+v", got, head)
	}

	// Mutations interleaved with pumping, including deletes.
	for i := 0; i < 30; i++ {
		if err := p.Put(fmt.Sprintf("k%d", i%7), payload{N: i, S: "live"}); err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			if err := p.Delete(fmt.Sprintf("pre-%d", i/5)); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			pump(t, p, f)
		}
	}
	pump(t, p, f)

	if p.ChainHead() != f.ChainHead() {
		t.Fatalf("heads diverged: primary %+v follower %+v", p.ChainHead(), f.ChainHead())
	}
	if want, got := storeDump(t, p), storeDump(t, f); !reflect.DeepEqual(want, got) {
		t.Fatalf("replicated data diverged:\nprimary  %v\nfollower %v", want, got)
	}

	// Takeover: the follower restarts on its own replicated state.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if rep, err := VerifyDir(fdir); err != nil || !rep.OK() {
		t.Fatalf("replicated dir fails verification: %v", err)
	}
	f2, err := OpenStore(fdir)
	if err != nil {
		t.Fatalf("takeover reopen: %v", err)
	}
	defer f2.Close()
	if want, got := storeDump(t, p), storeDump(t, f2); !reflect.DeepEqual(want, got) {
		t.Fatalf("post-takeover data diverged:\nprimary %v\nreplica %v", want, got)
	}
	if f2.ChainHead() != p.ChainHead() {
		t.Fatalf("post-takeover head %+v, want %+v", f2.ChainHead(), p.ChainHead())
	}
}

// TestStreamSinceReset: a follower that has fallen behind the bounded ring
// must be told to re-bootstrap, never silently fed a gapped stream.
func TestStreamSinceReset(t *testing.T) {
	s, err := OpenStoreOptions(t.TempDir(), StoreOptions{StreamRing: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 12; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, reset := s.StreamSince(0, 64); !reset {
		t.Fatal("follower behind the ring was not told to reset")
	}
	// From the ring's base the stream works.
	head := s.ChainHead()
	recs, _, reset := s.StreamSince(head.Seq-2, 64)
	if reset || len(recs) != 2 {
		t.Fatalf("tail fetch: %d recs reset=%v, want 2 records", len(recs), reset)
	}
	// A "future" follower (divergent or newer history) must also reset.
	if _, _, reset := s.StreamSince(head.Seq+10, 64); !reset {
		t.Fatal("follower ahead of the primary was not told to reset")
	}
}

// TestApplyReplicaRejects: transport corruption (hash mismatch) and stream
// discontinuities must be refused before they reach the follower's journal.
func TestApplyReplicaRejects(t *testing.T) {
	p, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := p.Put("a", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := p.StreamSince(0, 10)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	good := recs[0]

	bad := good
	bad.Hash = "0000" + good.Hash[4:]
	if err := f.ApplyReplica(bad); err == nil {
		t.Fatal("hash mismatch accepted")
	}
	bad = good
	bad.Seq = 7 // the follower is at 0; this cannot extend its head
	if err := f.ApplyReplica(bad); err == nil {
		t.Fatal("discontinuity accepted")
	}
	if err := f.ApplyReplica(good); err != nil {
		t.Fatalf("valid record refused: %v", err)
	}
	if f.ChainHead() != p.ChainHead() {
		t.Fatalf("heads diverged after apply")
	}
}

// TestWaitStreamWakesOnAppend: the long-poll primitive must wake promptly
// when the head advances, not sleep out its full deadline.
func TestWaitStreamWakesOnAppend(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	go func() {
		s.WaitStream(0, 10*time.Second)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Put("a", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitStream did not wake on append")
	}
}

// TestSyncReplicationArmDisarm covers the availability/durability dial: sync
// waits engage only once a follower acks, a lagging follower disarms them
// after the timeout, and the next ack re-arms.
func TestSyncReplicationArmDisarm(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const wait = 150 * time.Millisecond
	s.SyncReplication(wait)

	// Unarmed (no follower has ever acked): writes return immediately.
	start := time.Now()
	if err := s.Put("a", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > wait {
		t.Fatalf("unarmed put blocked %v", d)
	}

	// A current follower arms the wait; a prompt ack releases the writer
	// well before the timeout.
	s.FollowerAck(s.ChainHead().Seq)
	go func() {
		for {
			if h := s.ChainHead(); h.Seq >= 2 {
				s.FollowerAck(h.Seq)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	start = time.Now()
	if err := s.Put("b", payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= wait {
		t.Fatalf("acked put waited out the full timeout (%v)", d)
	}
	if _, armed := s.FollowerAckedSeq(); !armed {
		t.Fatal("prompt ack should leave sync replication armed")
	}

	// Follower goes silent: the write waits out the timeout once, then
	// disarms so the primary keeps accepting work.
	if err := s.Put("c", payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	if _, armed := s.FollowerAckedSeq(); armed {
		t.Fatal("silent follower should have disarmed sync replication")
	}
	start = time.Now()
	if err := s.Put("d", payload{N: 4}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > wait {
		t.Fatalf("disarmed put blocked %v", d)
	}

	// The follower catches up: acks re-arm the wait.
	s.FollowerAck(s.ChainHead().Seq)
	if _, armed := s.FollowerAckedSeq(); !armed {
		t.Fatal("ack should re-arm sync replication")
	}
}
