package gcat

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newMSS(t *testing.T) *MSS {
	t.Helper()
	m, err := NewMSS(MSSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestMSSChunkStoreAndAssembly(t *testing.T) {
	m := newMSS(t)
	c := NewMSSClient(m.Addr(), nil, nil)
	defer c.Close()
	c.PutChunk("out.log", 0, []byte("aaa"))
	c.PutChunk("out.log", 2, []byte("ccc")) // out of order: hole at 1
	data, chunks, err := c.Read("out.log")
	if err != nil || chunks != 1 || string(data) != "aaa" {
		t.Fatalf("prefix read = %q chunks=%d err=%v", data, chunks, err)
	}
	c.PutChunk("out.log", 1, []byte("bbb"))
	data, chunks, _ = c.Read("out.log")
	if chunks != 3 || string(data) != "aaabbbccc" {
		t.Fatalf("full read = %q chunks=%d", data, chunks)
	}
	// Duplicate re-send is idempotent.
	c.PutChunk("out.log", 1, []byte("XXX"))
	data, _, _ = c.Read("out.log")
	if string(data) != "aaabbbccc" {
		t.Fatalf("duplicate overwrote chunk: %q", data)
	}
	nChunks, nBytes, _ := c.Stat("out.log")
	if nChunks != 3 || nBytes != 9 {
		t.Fatalf("stat = %d chunks %d bytes", nChunks, nBytes)
	}
}

func TestMSSOutage(t *testing.T) {
	m := newMSS(t)
	c := NewMSSClient(m.Addr(), nil, nil)
	defer c.Close()
	m.SetOutage(true)
	if err := c.PutChunk("f", 0, []byte("x")); err == nil {
		t.Fatal("put during outage succeeded")
	}
	m.SetOutage(false)
	if err := c.PutChunk("f", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// writeSlowly appends lines to path over time, like Gaussian producing
// output.
func writeSlowly(t *testing.T, path string, lines int, interval time.Duration) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < lines; i++ {
		fmt.Fprintf(f, "SCF iteration %04d energy -76.02%04d\n", i, i)
		time.Sleep(interval)
	}
}

func TestGCatStreamsOutput(t *testing.T) {
	m := newMSS(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "gaussian.out")
	os.WriteFile(src, nil, 0o600)
	g, err := NewGCat(GCatConfig{
		SourcePath:  src,
		ScratchPath: filepath.Join(dir, "scratch"),
		MSSAddr:     m.Addr(),
		RemoteName:  "runs/g98.out",
		ChunkSize:   64,
		Poll:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	writeSlowly(t, src, 30, time.Millisecond)
	// The user can view partial output while the run is in progress.
	c := NewMSSClient(m.Addr(), nil, nil)
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, _, _ := c.Read("runs/g98.out")
		if bytes.Contains(data, []byte("iteration 0005")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partial output never visible (have %d bytes)", len(data))
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.Stop(3 * time.Second)
	want, _ := os.ReadFile(src)
	got, _, _ := c.Read("runs/g98.out")
	if !bytes.Equal(got, want) {
		t.Fatalf("MSS copy differs: %d vs %d bytes", len(got), len(want))
	}
	// Scratch buffer holds the full local copy.
	scratch, _ := os.ReadFile(filepath.Join(dir, "scratch"))
	if !bytes.Equal(scratch, want) {
		t.Fatalf("scratch differs: %d vs %d bytes", len(scratch), len(want))
	}
}

func TestGCatHidesNetworkOutageFromWriter(t *testing.T) {
	m := newMSS(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "out")
	os.WriteFile(src, nil, 0o600)
	g, err := NewGCat(GCatConfig{
		SourcePath: src,
		MSSAddr:    m.Addr(),
		RemoteName: "out",
		ChunkSize:  32,
		Poll:       5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetOutage(true)
	g.Start()
	// The writer proceeds at full speed during the outage.
	start := time.Now()
	writeSlowly(t, src, 20, 0)
	writerElapsed := time.Since(start)
	if writerElapsed > time.Second {
		t.Fatalf("writer was slowed by the outage: %v", writerElapsed)
	}
	// Bytes are buffered, not shipped.
	deadline := time.Now().Add(3 * time.Second)
	for {
		buffered, shipped := g.Progress()
		if buffered > 0 && shipped == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("buffering not observed: buffered=%d shipped=%d", buffered, shipped)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Network heals; everything drains.
	m.SetOutage(false)
	g.Stop(5 * time.Second)
	buffered, shipped := g.Progress()
	if buffered != shipped {
		t.Fatalf("after heal: buffered=%d shipped=%d", buffered, shipped)
	}
	c := NewMSSClient(m.Addr(), nil, nil)
	defer c.Close()
	want, _ := os.ReadFile(src)
	got, _, _ := c.Read("out")
	if !bytes.Equal(got, want) {
		t.Fatalf("post-outage MSS copy differs: %d vs %d bytes", len(got), len(want))
	}
}

func TestGCatThrottledNetwork(t *testing.T) {
	m := newMSS(t)
	// 2ms per chunk: slow but reachable.
	m.SetThrottle(func(int) { time.Sleep(2 * time.Millisecond) })
	dir := t.TempDir()
	src := filepath.Join(dir, "out")
	os.WriteFile(src, nil, 0o600)
	g, _ := NewGCat(GCatConfig{
		SourcePath: src,
		MSSAddr:    m.Addr(),
		RemoteName: "out",
		ChunkSize:  16,
		Poll:       2 * time.Millisecond,
	})
	g.Start()
	start := time.Now()
	writeSlowly(t, src, 10, 0)
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("writer throttled by slow network: %v", elapsed)
	}
	g.Stop(5 * time.Second)
	c := NewMSSClient(m.Addr(), nil, nil)
	defer c.Close()
	want, _ := os.ReadFile(src)
	got, _, _ := c.Read("out")
	if !bytes.Equal(got, want) {
		t.Fatalf("throttled copy differs: %d vs %d", len(got), len(want))
	}
}

func TestGCatMissingSourceTolerated(t *testing.T) {
	m := newMSS(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "late")
	g, err := NewGCat(GCatConfig{
		SourcePath: src, MSSAddr: m.Addr(), RemoteName: "late", Poll: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	time.Sleep(20 * time.Millisecond) // file does not exist yet
	os.WriteFile(src, []byte("finally"), 0o600)
	deadline := time.Now().Add(3 * time.Second)
	c := NewMSSClient(m.Addr(), nil, nil)
	defer c.Close()
	for {
		data, _, _ := c.Read("late")
		if string(data) == "finally" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late-created file never shipped: %q", data)
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.Stop(time.Second)
}
