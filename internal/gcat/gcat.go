// Package gcat reproduces §6.3's GridGaussian output utility: "a utility
// program called G-Cat that monitors the output file and sends updates to
// MSS as partial file chunks. G-Cat hides network performance variations
// from Gaussian by using local scratch storage as a buffer for Gaussian's
// output, rather than sending the output directly over the network. Users
// can view the output as it is received at MSS."
//
// The package provides the MSS (a chunk-store mass storage system served
// over the wire protocol, with injectable bandwidth variation and outages),
// the G-Cat monitor itself, and the reassembling reader.
package gcat

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// MSSService is the wire service name.
const MSSService = "mss"

// MSS is the mock Mass Storage System: files are sequences of immutable
// numbered chunks.
type MSS struct {
	srv *wire.Server

	mu    sync.Mutex
	files map[string]map[int][]byte // file -> seq -> data
	// Throttle simulates network performance variation: called once per
	// stored chunk with its size; sleep inside it to model bandwidth.
	throttle func(bytes int)
	outage   bool
}

// MSSOptions configures an MSS.
type MSSOptions struct {
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
}

// NewMSS starts a mass storage server.
func NewMSS(opts MSSOptions) (*MSS, error) {
	srv, err := wire.NewServer(wire.ServerConfig{
		Name:   MSSService,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	m := &MSS{srv: srv, files: make(map[string]map[int][]byte)}
	srv.Handle("mss.putchunk", m.handlePut)
	srv.Handle("mss.read", m.handleRead)
	srv.Handle("mss.stat", m.handleStat)
	return m, nil
}

// Addr returns host:port.
func (m *MSS) Addr() string { return m.srv.Addr() }

// Close stops the server.
func (m *MSS) Close() error { return m.srv.Close() }

// SetThrottle installs a per-chunk bandwidth model.
func (m *MSS) SetThrottle(fn func(bytes int)) {
	m.mu.Lock()
	m.throttle = fn
	m.mu.Unlock()
}

// SetOutage toggles a simulated storage outage: puts fail while true.
func (m *MSS) SetOutage(down bool) {
	m.mu.Lock()
	m.outage = down
	m.mu.Unlock()
}

type putReq struct {
	File string `json:"file"`
	Seq  int    `json:"seq"`
	Data []byte `json:"data"`
}

func (m *MSS) handlePut(_ string, body json.RawMessage) (any, error) {
	var req putReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	m.mu.Lock()
	throttle := m.throttle
	down := m.outage
	m.mu.Unlock()
	if down {
		return nil, fmt.Errorf("mss: storage system unavailable")
	}
	if throttle != nil {
		throttle(len(req.Data))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	chunks, ok := m.files[req.File]
	if !ok {
		chunks = make(map[int][]byte)
		m.files[req.File] = chunks
	}
	if _, dup := chunks[req.Seq]; !dup { // idempotent re-send
		chunks[req.Seq] = append([]byte(nil), req.Data...)
	}
	return struct{}{}, nil
}

type readReq struct {
	File string `json:"file"`
}

type readResp struct {
	Data   []byte `json:"data"`
	Chunks int    `json:"chunks"`
}

// handleRead assembles the contiguous prefix of chunks — what an FTP client
// (or the assembly script the paper mentions) would retrieve.
func (m *MSS) handleRead(_ string, body json.RawMessage) (any, error) {
	var req readReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	chunks := m.files[req.File]
	var seqs []int
	for s := range chunks {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	var data []byte
	count := 0
	for i, s := range seqs {
		if s != i {
			break // hole: stop at the contiguous prefix
		}
		data = append(data, chunks[s]...)
		count++
	}
	return readResp{Data: data, Chunks: count}, nil
}

type statResp struct {
	Chunks int `json:"chunks"`
	Bytes  int `json:"bytes"`
}

func (m *MSS) handleStat(_ string, body json.RawMessage) (any, error) {
	var req readReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	chunks := m.files[req.File]
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	return statResp{Chunks: len(chunks), Bytes: total}, nil
}

// MSSClient reads from and writes to an MSS.
type MSSClient struct {
	wc *wire.Client
}

// NewMSSClient connects to the MSS at addr.
func NewMSSClient(addr string, cred *gsi.Credential, clock gsi.Clock) *MSSClient {
	return &MSSClient{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: MSSService,
		Credential: cred,
		Clock:      clock,
		Timeout:    2 * time.Second,
		Retries:    1,
	})}
}

// Close releases the connection.
func (c *MSSClient) Close() error { return c.wc.Close() }

// PutChunk stores one numbered chunk.
func (c *MSSClient) PutChunk(file string, seq int, data []byte) error {
	return c.wc.Call("mss.putchunk", putReq{File: file, Seq: seq, Data: data}, nil)
}

// Read returns the contiguous prefix of the file as stored so far.
func (c *MSSClient) Read(file string) ([]byte, int, error) {
	var resp readResp
	if err := c.wc.Call("mss.read", readReq{File: file}, &resp); err != nil {
		return nil, 0, err
	}
	return resp.Data, resp.Chunks, nil
}

// Stat reports stored chunk count and total bytes.
func (c *MSSClient) Stat(file string) (chunks, bytes int, err error) {
	var resp statResp
	if err := c.wc.Call("mss.stat", readReq{File: file}, &resp); err != nil {
		return 0, 0, err
	}
	return resp.Chunks, resp.Bytes, nil
}

// GCat monitors a growing local file and ships it to MSS in chunks,
// buffering through local scratch so the producing application never
// blocks on the network.
type GCat struct {
	cfg GCatConfig

	mu        sync.Mutex
	buffered  int64 // bytes read from the source, not yet acked by MSS
	shipped   int64 // bytes acked by MSS
	seq       int
	stopCh    chan struct{}
	wg        sync.WaitGroup
	scratchFd *os.File
	pending   [][]byte // chunks awaiting upload (backed by scratch file)
}

// GCatConfig configures a monitor.
type GCatConfig struct {
	// SourcePath is the output file being written by the application.
	SourcePath string
	// ScratchPath is local scratch used as the network-hiding buffer.
	ScratchPath string
	// MSSAddr and RemoteName identify the destination.
	MSSAddr    string
	RemoteName string
	// ChunkSize is the shipping unit (default 4 KiB).
	ChunkSize int
	// Poll is the file-watch interval (default 10ms).
	Poll time.Duration
	// Credential authenticates to MSS.
	Credential *gsi.Credential
	Clock      gsi.Clock
}

// NewGCat creates a monitor; Start begins watching.
func NewGCat(cfg GCatConfig) (*GCat, error) {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4 << 10
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 10 * time.Millisecond
	}
	g := &GCat{cfg: cfg, stopCh: make(chan struct{})}
	if cfg.ScratchPath != "" {
		fd, err := os.OpenFile(cfg.ScratchPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			return nil, err
		}
		g.scratchFd = fd
	}
	return g, nil
}

// Start launches the watch/ship loops.
func (g *GCat) Start() {
	g.wg.Add(1)
	go g.run()
}

// Progress reports (bytes buffered from the source, bytes acked by MSS).
func (g *GCat) Progress() (buffered, shipped int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buffered, g.shipped
}

// Stop flushes what it can within grace and halts: it waits until every
// byte currently in the source file has been read AND acknowledged by MSS
// (or the grace period expires), then stops the loops.
func (g *GCat) Stop(grace time.Duration) {
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		buffered, shipped := g.Progress()
		flushed := buffered == shipped
		if fi, err := os.Stat(g.cfg.SourcePath); err == nil {
			flushed = flushed && shipped >= fi.Size()
		}
		if flushed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(g.stopCh)
	g.wg.Wait()
	if g.scratchFd != nil {
		g.scratchFd.Close()
	}
}

func (g *GCat) run() {
	defer g.wg.Done()
	client := NewMSSClient(g.cfg.MSSAddr, g.cfg.Credential, g.cfg.Clock)
	defer client.Close()
	ticker := time.NewTicker(g.cfg.Poll)
	defer ticker.Stop()
	var readOffset int64
	for {
		select {
		case <-g.stopCh:
			return
		case <-ticker.C:
		}
		// 1. Drain new bytes from the source into the scratch buffer.
		//    This is local disk I/O only — the application's writes are
		//    never coupled to the network.
		data, err := readAt(g.cfg.SourcePath, readOffset)
		if err == nil && len(data) > 0 {
			readOffset += int64(len(data))
			if g.scratchFd != nil {
				g.scratchFd.Write(data)
			}
			g.mu.Lock()
			g.buffered += int64(len(data))
			for len(data) > 0 {
				n := g.cfg.ChunkSize
				if n > len(data) {
					n = len(data)
				}
				g.pending = append(g.pending, append([]byte(nil), data[:n]...))
				data = data[n:]
			}
			g.mu.Unlock()
		}
		// 2. Ship pending chunks; on failure keep them buffered and
		//    retry next tick (network variation hidden from the app).
		for {
			g.mu.Lock()
			if len(g.pending) == 0 {
				g.mu.Unlock()
				break
			}
			chunk := g.pending[0]
			seq := g.seq
			g.mu.Unlock()
			if err := client.PutChunk(g.cfg.RemoteName, seq, chunk); err != nil {
				break // MSS slow or down: retry later
			}
			g.mu.Lock()
			g.pending = g.pending[1:]
			g.seq++
			g.shipped += int64(len(chunk))
			g.mu.Unlock()
		}
	}
}

func readAt(path string, offset int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() <= offset {
		return nil, nil
	}
	buf := make([]byte, fi.Size()-offset)
	n, err := f.ReadAt(buf, offset)
	if err != nil && n == 0 {
		return nil, err
	}
	return buf[:n], nil
}
