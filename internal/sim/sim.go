// Package sim is the discrete-event grid simulator behind the large-scale
// reproductions of the paper's Section 6: a simulated week on ten sites and
// 2,500 CPUs runs in milliseconds of wall time, deterministically from a
// seed. Sites reuse the real scheduling policies from internal/lrm, so the
// queueing behaviour under study is computed by the same code the live
// Gatekeepers run.
package sim

import (
	"fmt"
	"time"

	"condorg/internal/events"
	"condorg/internal/lrm"
)

// JobSpec describes a simulated job.
type JobSpec struct {
	ID       string
	Owner    string
	Cpus     int
	Duration time.Duration // actual runtime
	Estimate time.Duration // user estimate (for backfill)
}

// JobStats records one job's life in virtual time.
type JobStats struct {
	ID     string
	Owner  string
	Site   string
	Cpus   int
	Submit time.Duration
	Start  time.Duration
	End    time.Duration
}

// QueueWait is time spent waiting in the site queue.
func (s JobStats) QueueWait() time.Duration { return s.Start - s.Submit }

// RunTime is the execution time.
func (s JobStats) RunTime() time.Duration { return s.End - s.Start }

// Site is a simulated execution site with a fixed CPU count and a real LRM
// policy.
type Site struct {
	Name   string
	eng    *events.Engine
	cpus   int
	free   int
	policy lrm.Policy

	queue   []*lrm.QueuedJob
	pending map[string]*simJob
	running map[string]*simJob
	owners  []string

	busyIntegral float64       // cpu-seconds consumed
	lastChange   time.Duration // for the utilization integral
	serial       int
	inSchedule   bool // guards against re-entrant scheduling
	schedDirty   bool
}

type simJob struct {
	spec     JobSpec
	submit   time.Duration
	onStart  func(stats JobStats)
	onDone   func(stats JobStats)
	stats    JobStats
	finishEv *events.Event // pending completion, for early termination
}

// NewSite creates a site on the engine.
func NewSite(eng *events.Engine, name string, cpus int, policy lrm.Policy) *Site {
	if policy == nil {
		policy = lrm.FIFO{}
	}
	return &Site{
		Name:    name,
		eng:     eng,
		cpus:    cpus,
		free:    cpus,
		policy:  policy,
		pending: make(map[string]*simJob),
		running: make(map[string]*simJob),
	}
}

// Cpus returns capacity; FreeCpus the idle count; QueueDepth waiting jobs.
func (s *Site) Cpus() int       { return s.cpus }
func (s *Site) FreeCpus() int   { return s.free }
func (s *Site) QueueDepth() int { return len(s.queue) }

// Utilization returns consumed CPU time / available CPU time up to now.
func (s *Site) Utilization() float64 {
	s.accrue()
	elapsed := float64(s.eng.Now())
	if elapsed == 0 {
		return 0
	}
	return s.busyIntegral / (elapsed * float64(s.cpus))
}

func (s *Site) accrue() {
	now := s.eng.Now()
	busy := s.cpus - s.free
	s.busyIntegral += float64(now-s.lastChange) * float64(busy)
	s.lastChange = now
}

// Submit enqueues a job; callbacks fire at (virtual) start and end.
func (s *Site) Submit(spec JobSpec, onStart, onDone func(JobStats)) {
	if spec.Cpus <= 0 {
		spec.Cpus = 1
	}
	if spec.Cpus > s.cpus {
		panic(fmt.Sprintf("sim: job %s wants %d CPUs, site %s has %d", spec.ID, spec.Cpus, s.Name, s.cpus))
	}
	if spec.ID == "" {
		s.serial++
		spec.ID = fmt.Sprintf("%s.%d", s.Name, s.serial)
	}
	if spec.Estimate == 0 {
		spec.Estimate = spec.Duration
	}
	job := &simJob{
		spec:    spec,
		submit:  s.eng.Now(),
		onStart: onStart,
		onDone:  onDone,
		stats: JobStats{
			ID: spec.ID, Owner: spec.Owner, Site: s.Name, Cpus: spec.Cpus, Submit: s.eng.Now(),
		},
	}
	s.pending[spec.ID] = job
	s.queue = append(s.queue, &lrm.QueuedJob{
		ID: spec.ID, Owner: spec.Owner, Cpus: spec.Cpus, Estimate: spec.Estimate,
	})
	s.schedule()
}

// CancelQueued drops a still-queued job (used by migrating brokers);
// it reports whether the job was found waiting.
func (s *Site) CancelQueued(id string) bool {
	for i, q := range s.queue {
		if q.ID == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			delete(s.pending, id)
			return true
		}
	}
	return false
}

// schedule starts policy-selected jobs. Job callbacks run synchronously and
// may submit or finish other jobs on this site (GlideIn retirement does),
// so re-entrant calls are deferred and replayed.
func (s *Site) schedule() {
	if s.inSchedule {
		s.schedDirty = true
		return
	}
	s.inSchedule = true
	defer func() { s.inSchedule = false }()
	for {
		s.schedDirty = false
		picks := s.policy.Select(s.queue, s.free, s.owners)
		if len(picks) > 0 {
			picked := make(map[string]bool, len(picks))
			for _, p := range picks {
				picked[p.ID] = true
			}
			// Detach the picked jobs from the queue BEFORE running any
			// callbacks: a callback may submit new jobs to this queue.
			var started []*simJob
			var keep []*lrm.QueuedJob
			for _, q := range s.queue {
				if !picked[q.ID] {
					keep = append(keep, q)
					continue
				}
				started = append(started, s.pending[q.ID])
				delete(s.pending, q.ID)
			}
			s.queue = keep
			for _, job := range started {
				s.start(job)
			}
		}
		if !s.schedDirty {
			return
		}
	}
}

func (s *Site) start(job *simJob) {
	s.accrue()
	s.free -= job.spec.Cpus
	s.owners = append(s.owners, job.spec.Owner)
	s.running[job.spec.ID] = job
	now := s.eng.Now()
	job.stats.Start = now
	if job.onStart != nil {
		job.onStart(job.stats)
	}
	job.finishEv = s.eng.After(job.spec.Duration, func() { s.finish(job) })
}

// FinishEarly completes a running job now — a GlideIn pilot retiring before
// its lease expires releases its CPU back to the site. It reports whether
// the job was running.
func (s *Site) FinishEarly(id string) bool {
	job, ok := s.running[id]
	if !ok {
		return false
	}
	if job.finishEv != nil {
		job.finishEv.Cancel()
	}
	s.finish(job)
	return true
}

func (s *Site) finish(job *simJob) {
	s.accrue()
	s.free += job.spec.Cpus
	delete(s.running, job.spec.ID)
	for i, o := range s.owners {
		if o == job.spec.Owner {
			s.owners = append(s.owners[:i], s.owners[i+1:]...)
			break
		}
	}
	job.stats.End = s.eng.Now()
	if job.onDone != nil {
		job.onDone(job.stats)
	}
	s.schedule()
}

// BackgroundLoad injects competing jobs from other users: a Poisson-ish
// arrival process with exponential interarrivals and durations drawn from
// the engine's deterministic RNG.
type BackgroundLoad struct {
	// MeanInterarrival between background submissions.
	MeanInterarrival time.Duration
	// MeanDuration of each background job.
	MeanDuration time.Duration
	// MaxCpus per background job (uniform 1..MaxCpus).
	MaxCpus int
	// Until stops the generator (0 = forever).
	Until time.Duration
}

// Start begins injecting load into site.
func (b BackgroundLoad) Start(eng *events.Engine, site *Site) {
	if b.MaxCpus <= 0 {
		b.MaxCpus = 1
	}
	var next func()
	n := 0
	next = func() {
		if b.Until > 0 && eng.Now() >= b.Until {
			return
		}
		n++
		cpus := 1 + eng.Rand().Intn(b.MaxCpus)
		if cpus > site.Cpus() {
			cpus = site.Cpus()
		}
		dur := expDuration(eng, b.MeanDuration)
		site.Submit(JobSpec{
			ID:       fmt.Sprintf("%s.bg%d", site.Name, n),
			Owner:    "background",
			Cpus:     cpus,
			Duration: dur,
		}, nil, nil)
		eng.After(expDuration(eng, b.MeanInterarrival), next)
	}
	eng.After(expDuration(eng, b.MeanInterarrival), next)
}

func expDuration(eng *events.Engine, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(eng.Rand().ExpFloat64() * float64(mean))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Metrics aggregates statistics for one user's jobs across the grid.
type Metrics struct {
	eng  *events.Engine
	Jobs []JobStats

	active         int // currently running CPUs
	peak           int
	activeIntegral float64 // cpu-seconds
	lastChange     time.Duration
	cpuSeconds     float64
}

// NewMetrics creates a collector.
func NewMetrics(eng *events.Engine) *Metrics { return &Metrics{eng: eng} }

// OnStart and OnDone are the callbacks to pass to Site.Submit.
func (m *Metrics) OnStart(st JobStats) {
	m.accrue()
	m.active += st.Cpus
	if m.active > m.peak {
		m.peak = m.active
	}
}

// OnDone records a completed job.
func (m *Metrics) OnDone(st JobStats) {
	m.accrue()
	m.active -= st.Cpus
	m.Jobs = append(m.Jobs, st)
	m.cpuSeconds += st.RunTime().Seconds() * float64(st.Cpus)
}

func (m *Metrics) accrue() {
	now := m.eng.Now()
	m.activeIntegral += (now - m.lastChange).Seconds() * float64(m.active)
	m.lastChange = now
}

// CPUHours returns total CPU time consumed by completed jobs, in hours.
func (m *Metrics) CPUHours() float64 { return m.cpuSeconds / 3600 }

// PeakCpus returns the maximum concurrent CPUs.
func (m *Metrics) PeakCpus() int { return m.peak }

// ActiveCpus returns the instantaneous concurrent CPUs.
func (m *Metrics) ActiveCpus() int { return m.active }

// AvgCpus returns the time-averaged concurrent CPUs over [0, now].
func (m *Metrics) AvgCpus() float64 {
	m.accrue()
	elapsed := m.eng.Now().Seconds()
	if elapsed == 0 {
		return 0
	}
	return m.activeIntegral / elapsed
}

// OnSliceStart accounts a partial execution (a checkpointed slice of a
// migrating job) toward concurrency without registering a completed job.
func (m *Metrics) OnSliceStart(cpus int) {
	m.accrue()
	m.active += cpus
	if m.active > m.peak {
		m.peak = m.active
	}
}

// OnSliceEnd closes a partial execution, crediting its CPU time.
func (m *Metrics) OnSliceEnd(cpus int, ran time.Duration) {
	m.accrue()
	m.active -= cpus
	m.cpuSeconds += ran.Seconds() * float64(cpus)
}

// RecordJob registers a completed job's lifecycle statistics without
// touching the concurrency or CPU-time accounting — used for jobs whose
// execution was accounted slice by slice across migrations.
func (m *Metrics) RecordJob(st JobStats) { m.Jobs = append(m.Jobs, st) }

// MeanQueueWait averages queue waits over completed jobs.
func (m *Metrics) MeanQueueWait() time.Duration {
	if len(m.Jobs) == 0 {
		return 0
	}
	var total time.Duration
	for _, j := range m.Jobs {
		total += j.QueueWait()
	}
	return total / time.Duration(len(m.Jobs))
}

// MaxQueueWait returns the worst queue wait.
func (m *Metrics) MaxQueueWait() time.Duration {
	var max time.Duration
	for _, j := range m.Jobs {
		if w := j.QueueWait(); w > max {
			max = w
		}
	}
	return max
}

// Makespan is the completion time of the last job.
func (m *Metrics) Makespan() time.Duration {
	var max time.Duration
	for _, j := range m.Jobs {
		if j.End > max {
			max = j.End
		}
	}
	return max
}
