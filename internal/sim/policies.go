package sim

import (
	"fmt"
	"time"

	"condorg/internal/events"
)

// SiteChooser picks a site for each job — the simulated counterparts of the
// §4.4 brokering strategies.
type SiteChooser interface {
	Choose(sites []*Site) *Site
}

// FirstSite always uses sites[0]: the "user-supplied list" of one.
type FirstSite struct{}

// Choose implements SiteChooser.
func (FirstSite) Choose(sites []*Site) *Site { return sites[0] }

// RoundRobin rotates through the list.
type RoundRobin struct{ next int }

// Choose implements SiteChooser.
func (r *RoundRobin) Choose(sites []*Site) *Site {
	s := sites[r.next%len(sites)]
	r.next++
	return s
}

// ShortestQueue picks the site with the fewest waiting jobs (an MDS-informed
// broker: queue depth is exactly what the Reporter publishes).
type ShortestQueue struct{}

// Choose implements SiteChooser.
func (ShortestQueue) Choose(sites []*Site) *Site {
	best := sites[0]
	for _, s := range sites[1:] {
		if s.QueueDepth() < best.QueueDepth() ||
			(s.QueueDepth() == best.QueueDepth() && s.FreeCpus() > best.FreeCpus()) {
			best = s
		}
	}
	return best
}

// AdaptiveWait learns per-site queue waits from observations (the §4.4
// high-throughput strategy: "monitoring of actual queuing and execution
// times allows for the tuning of where to submit subsequent jobs").
type AdaptiveWait struct {
	stats map[string]*waitStats
}

type waitStats struct {
	samples  int
	total    time.Duration
	inFlight int
}

// NewAdaptiveWait creates the learner.
func NewAdaptiveWait() *AdaptiveWait {
	return &AdaptiveWait{stats: make(map[string]*waitStats)}
}

func (a *AdaptiveWait) stat(name string) *waitStats {
	st, ok := a.stats[name]
	if !ok {
		st = &waitStats{}
		a.stats[name] = st
	}
	return st
}

// Choose implements SiteChooser.
func (a *AdaptiveWait) Choose(sites []*Site) *Site {
	var best *Site
	bestScore := 0.0
	for _, s := range sites {
		st := a.stat(s.Name)
		avg := float64(time.Second)
		if st.samples > 0 {
			avg += float64(st.total) / float64(st.samples)
		}
		score := avg * float64(1+st.inFlight)
		if best == nil || score < bestScore {
			best, bestScore = s, score
		}
	}
	a.stat(best.Name).inFlight++
	return best
}

// Observe feeds back an observed queue wait.
func (a *AdaptiveWait) Observe(site string, wait time.Duration) {
	st := a.stat(site)
	if st.inFlight > 0 {
		st.inFlight--
	}
	st.samples++
	st.total += wait
}

// DirectSubmit runs a workload by committing each job to one site's queue
// at submission time — early binding. Completed-job stats flow into m.
func DirectSubmit(eng *events.Engine, sites []*Site, chooser SiteChooser, jobs []JobSpec, m *Metrics) {
	adaptive, _ := chooser.(*AdaptiveWait)
	for _, spec := range jobs {
		spec := spec
		site := chooser.Choose(sites)
		site.Submit(spec,
			func(st JobStats) {
				m.OnStart(st)
				if adaptive != nil {
					adaptive.Observe(st.Site, st.QueueWait())
				}
			},
			m.OnDone)
	}
}

// GlideinPool models §5's delayed binding: pilots are submitted to sites;
// when a pilot starts it becomes a slot in the user's personal pool; user
// jobs bind to whichever slot frees up first. Slots retire at lease expiry
// or after an idle timeout — the runaway-daemon guard.
type GlideinPool struct {
	eng   *events.Engine
	queue []*poolJob
	m     *Metrics

	PilotsStarted int
	PilotsRetired int
	Migrations    int                      // checkpointed cross-slot moves
	SlotBusy      map[string]time.Duration // per-slot busy time
	SlotAlive     map[string]time.Duration // per-slot lifetime
}

type poolJob struct {
	spec   JobSpec
	submit time.Duration
	// started records the FIRST slice's start, so queue-wait statistics
	// measure submission-to-first-execution even when the job migrates
	// across slots via checkpoints.
	started  time.Duration
	everRan  bool
	migrated int
}

// NewGlideinPool creates an empty personal pool.
func NewGlideinPool(eng *events.Engine, m *Metrics) *GlideinPool {
	return &GlideinPool{
		eng:       eng,
		m:         m,
		SlotBusy:  make(map[string]time.Duration),
		SlotAlive: make(map[string]time.Duration),
	}
}

// AddJob queues a user job in the personal pool.
func (p *GlideinPool) AddJob(spec JobSpec) {
	p.queue = append(p.queue, &poolJob{spec: spec, submit: p.eng.Now()})
}

// QueueLen returns waiting user jobs.
func (p *GlideinPool) QueueLen() int { return len(p.queue) }

// SubmitPilots floods n single-CPU pilots to each site with the given lease
// and idle timeout. Pilot queue wait is governed by the site's own policy
// and background load — exactly like any other site job.
func (p *GlideinPool) SubmitPilots(site *Site, n int, lease, idleTimeout time.Duration) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("pilot-%s-%d-%d", site.Name, p.eng.Now()/time.Second, i)
		p.submitPilot(site, name, lease, idleTimeout)
	}
}

func (p *GlideinPool) submitPilot(site *Site, name string, lease, idleTimeout time.Duration) {
	site.Submit(JobSpec{
		ID:       name,
		Owner:    "glidein",
		Cpus:     1,
		Duration: lease, // the site sees a job that holds a CPU for the lease
		Estimate: lease,
	}, func(st JobStats) {
		// Pilot started: a slot joins the personal pool.
		p.PilotsStarted++
		p.runSlot(site, name, st.Start, lease, idleTimeout)
	}, nil)
}

// runSlot executes queued user jobs on the slot until the lease ends or the
// slot idles out.
func (p *GlideinPool) runSlot(site *Site, name string, startedAt time.Duration, lease, idleTimeout time.Duration) {
	leaseEnd := startedAt + lease
	var next func()
	var idleSince time.Duration
	next = func() {
		now := p.eng.Now()
		if now >= leaseEnd {
			p.retire(site, name, startedAt, now)
			return
		}
		if len(p.queue) == 0 {
			if idleTimeout > 0 && now-idleSince >= idleTimeout {
				p.retire(site, name, startedAt, now)
				return
			}
			wake := now + 10*time.Second
			if wake > leaseEnd {
				wake = leaseEnd
			}
			p.eng.At(wake, next)
			return
		}
		job := p.queue[0]
		p.queue = p.queue[1:]
		remaining := leaseEnd - now
		if !job.everRan {
			job.everRan = true
			job.started = now
		}
		if job.spec.Duration > remaining {
			// Not enough lease left for the whole job: run a
			// checkpointed slice to the lease boundary, then requeue
			// the remainder for another slot — §5's "periodically
			// checkpoints the job ... and migrates the job to another
			// location ... when the remote allocation expires".
			if remaining <= 0 {
				p.queue = append(p.queue, job)
				p.retire(site, name, startedAt, now)
				return
			}
			p.m.OnSliceStart(1)
			p.eng.After(remaining, func() {
				p.m.OnSliceEnd(1, remaining)
				p.SlotBusy[name] += remaining
				job.spec.Duration -= remaining
				job.migrated++
				p.Migrations++
				p.queue = append(p.queue, job)
				p.retire(site, name, startedAt, p.eng.Now())
			})
			return
		}
		if job.migrated > 0 {
			// Final slice of a migrated job: account the execution as
			// a slice (only the remaining duration is CPU time) and
			// record the job's lifecycle separately.
			dur := job.spec.Duration
			p.m.OnSliceStart(1)
			p.eng.After(dur, func() {
				p.m.OnSliceEnd(1, dur)
				p.m.RecordJob(JobStats{
					ID: job.spec.ID, Owner: job.spec.Owner, Site: name, Cpus: 1,
					Submit: job.submit, Start: job.started, End: p.eng.Now(),
				})
				p.SlotBusy[name] += dur
				idleSince = p.eng.Now()
				next()
			})
			return
		}
		stats := JobStats{
			ID: job.spec.ID, Owner: job.spec.Owner, Site: name, Cpus: 1,
			Submit: job.submit, Start: job.started,
		}
		p.m.OnStart(stats)
		p.eng.After(job.spec.Duration, func() {
			stats.End = p.eng.Now()
			p.m.OnDone(stats)
			p.SlotBusy[name] += job.spec.Duration
			idleSince = p.eng.Now()
			next()
		})
	}
	idleSince = startedAt
	next()
}

// retire shuts the daemon down gracefully: the slot leaves the personal
// pool AND its pilot job completes at the site, releasing the CPU (early
// when before lease expiry).
func (p *GlideinPool) retire(site *Site, name string, startedAt, now time.Duration) {
	p.PilotsRetired++
	p.SlotAlive[name] = now - startedAt
	site.FinishEarly(name)
}

// WastedCPUSeconds totals slot-alive time not spent on user jobs — the
// overhead the idle-timeout guard bounds (ablation A3).
func (p *GlideinPool) WastedCPUSeconds() float64 {
	var wasted float64
	for name, alive := range p.SlotAlive {
		wasted += (alive - p.SlotBusy[name]).Seconds()
	}
	return wasted
}
