package sim

import (
	"fmt"
	"testing"
	"time"

	"condorg/internal/events"
	"condorg/internal/lrm"
)

func TestSiteRunsJobImmediatelyWhenFree(t *testing.T) {
	eng := events.NewEngine(1)
	site := NewSite(eng, "s", 4, nil)
	m := NewMetrics(eng)
	site.Submit(JobSpec{ID: "j1", Owner: "u", Duration: time.Hour}, m.OnStart, m.OnDone)
	eng.Run()
	if len(m.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(m.Jobs))
	}
	j := m.Jobs[0]
	if j.QueueWait() != 0 || j.RunTime() != time.Hour {
		t.Fatalf("wait=%v run=%v", j.QueueWait(), j.RunTime())
	}
}

func TestSiteQueuesWhenFull(t *testing.T) {
	eng := events.NewEngine(1)
	site := NewSite(eng, "s", 1, nil)
	m := NewMetrics(eng)
	site.Submit(JobSpec{ID: "a", Owner: "u", Duration: time.Hour}, m.OnStart, m.OnDone)
	site.Submit(JobSpec{ID: "b", Owner: "u", Duration: time.Hour}, m.OnStart, m.OnDone)
	if site.QueueDepth() != 1 {
		t.Fatalf("queue = %d", site.QueueDepth())
	}
	eng.Run()
	var bWait time.Duration
	for _, j := range m.Jobs {
		if j.ID == "b" {
			bWait = j.QueueWait()
		}
	}
	if bWait != time.Hour {
		t.Fatalf("b waited %v, want 1h", bWait)
	}
	if m.Makespan() != 2*time.Hour {
		t.Fatalf("makespan = %v", m.Makespan())
	}
}

func TestBackfillPolicyInSim(t *testing.T) {
	eng := events.NewEngine(1)
	site := NewSite(eng, "s", 2, lrm.Backfill{})
	m := NewMetrics(eng)
	// Occupy 1 CPU for 2h; a 2-CPU job blocks at head; a small job can
	// backfill on the free CPU.
	site.Submit(JobSpec{ID: "long", Owner: "u", Duration: 2 * time.Hour}, m.OnStart, m.OnDone)
	site.Submit(JobSpec{ID: "wide", Owner: "u", Cpus: 2, Duration: time.Hour}, m.OnStart, m.OnDone)
	site.Submit(JobSpec{ID: "small", Owner: "u", Duration: 30 * time.Minute}, m.OnStart, m.OnDone)
	eng.Run()
	waits := map[string]time.Duration{}
	for _, j := range m.Jobs {
		waits[j.ID] = j.QueueWait()
	}
	if waits["small"] != 0 {
		t.Fatalf("backfill: small waited %v, want 0", waits["small"])
	}
	if waits["wide"] != 2*time.Hour {
		t.Fatalf("wide waited %v, want 2h", waits["wide"])
	}
}

func TestUtilizationAndCPUHours(t *testing.T) {
	eng := events.NewEngine(1)
	site := NewSite(eng, "s", 2, nil)
	m := NewMetrics(eng)
	site.Submit(JobSpec{ID: "a", Owner: "u", Cpus: 2, Duration: time.Hour}, m.OnStart, m.OnDone)
	eng.Run()
	if got := m.CPUHours(); got != 2 {
		t.Fatalf("cpu-hours = %v, want 2", got)
	}
	if u := site.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1", u)
	}
	if m.PeakCpus() != 2 {
		t.Fatalf("peak = %d", m.PeakCpus())
	}
	if avg := m.AvgCpus(); avg < 1.99 || avg > 2.01 {
		t.Fatalf("avg cpus = %v", avg)
	}
}

func TestBackgroundLoadOccupiesSite(t *testing.T) {
	eng := events.NewEngine(7)
	site := NewSite(eng, "s", 16, nil)
	BackgroundLoad{
		MeanInterarrival: 2 * time.Minute,
		MeanDuration:     30 * time.Minute,
		MaxCpus:          4,
		Until:            8 * time.Hour,
	}.Start(eng, site)
	eng.RunUntil(12 * time.Hour)
	if u := site.Utilization(); u < 0.2 {
		t.Fatalf("background produced utilization %v, want busy site", u)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int) {
		eng := events.NewEngine(99)
		site := NewSite(eng, "s", 8, nil)
		BackgroundLoad{MeanInterarrival: time.Minute, MeanDuration: 10 * time.Minute, MaxCpus: 2, Until: 4 * time.Hour}.Start(eng, site)
		m := NewMetrics(eng)
		for i := 0; i < 20; i++ {
			site.Submit(JobSpec{ID: fmt.Sprintf("u%d", i), Owner: "u", Duration: 15 * time.Minute}, m.OnStart, m.OnDone)
		}
		eng.RunUntil(24 * time.Hour)
		return m.MeanQueueWait().Seconds(), len(m.Jobs)
	}
	w1, n1 := run()
	w2, n2 := run()
	if w1 != w2 || n1 != n2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", w1, n1, w2, n2)
	}
}

func TestChoosers(t *testing.T) {
	eng := events.NewEngine(1)
	a := NewSite(eng, "a", 1, nil)
	b := NewSite(eng, "b", 1, nil)
	sites := []*Site{a, b}
	if (FirstSite{}).Choose(sites) != a {
		t.Fatal("FirstSite")
	}
	rr := &RoundRobin{}
	if rr.Choose(sites) != a || rr.Choose(sites) != b || rr.Choose(sites) != a {
		t.Fatal("RoundRobin")
	}
	// Make a busier: one running + one queued.
	a.Submit(JobSpec{ID: "x", Owner: "u", Duration: time.Hour}, nil, nil)
	a.Submit(JobSpec{ID: "y", Owner: "u", Duration: time.Hour}, nil, nil)
	if (ShortestQueue{}).Choose(sites) != b {
		t.Fatal("ShortestQueue should avoid the loaded site")
	}
}

func TestAdaptiveWaitLearns(t *testing.T) {
	eng := events.NewEngine(1)
	slow := NewSite(eng, "slow", 1, nil)
	fast := NewSite(eng, "fast", 1, nil)
	a := NewAdaptiveWait()
	a.Observe("slow", time.Hour)
	a.Observe("fast", time.Minute)
	for i := 0; i < 5; i++ {
		if got := a.Choose([]*Site{slow, fast}); got != fast {
			t.Fatalf("pick %d went to %s", i, got.Name)
		}
		a.Observe("fast", time.Minute)
	}
}

func TestGlideinDelayedBinding(t *testing.T) {
	// Two sites: one empty, one jammed with a long background job. Direct
	// submission to the jammed site waits hours; glideins flooded to both
	// bind the job to the free site almost immediately.
	mkSites := func(eng *events.Engine) (*Site, *Site) {
		busy := NewSite(eng, "busy", 1, nil)
		free := NewSite(eng, "free", 1, nil)
		busy.Submit(JobSpec{ID: "hog", Owner: "background", Duration: 10 * time.Hour}, nil, nil)
		return busy, free
	}

	// Early binding to the busy site.
	engD := events.NewEngine(1)
	busyD, _ := mkSites(engD)
	mD := NewMetrics(engD)
	busyD.Submit(JobSpec{ID: "job", Owner: "u", Duration: time.Hour}, mD.OnStart, mD.OnDone)
	engD.Run()
	directWait := mD.Jobs[0].QueueWait()

	// Delayed binding via glideins to both sites.
	engG := events.NewEngine(1)
	busyG, freeG := mkSites(engG)
	mG := NewMetrics(engG)
	pool := NewGlideinPool(engG, mG)
	pool.AddJob(JobSpec{ID: "job", Owner: "u", Duration: time.Hour})
	pool.SubmitPilots(busyG, 1, 4*time.Hour, 30*time.Minute)
	pool.SubmitPilots(freeG, 1, 4*time.Hour, 30*time.Minute)
	engG.Run()
	if len(mG.Jobs) != 1 {
		t.Fatalf("glidein pool completed %d jobs", len(mG.Jobs))
	}
	glideinWait := mG.Jobs[0].QueueWait()

	if directWait != 10*time.Hour {
		t.Fatalf("direct wait = %v, want 10h", directWait)
	}
	if glideinWait > time.Minute {
		t.Fatalf("glidein wait = %v, want ~0 (bound to the free site)", glideinWait)
	}
}

func TestGlideinIdleRetirementBoundsWaste(t *testing.T) {
	eng := events.NewEngine(1)
	site := NewSite(eng, "s", 4, nil)
	m := NewMetrics(eng)
	pool := NewGlideinPool(eng, m)
	// One short job, four pilots with a long lease but short idle
	// timeout: the unused pilots retire early.
	pool.AddJob(JobSpec{ID: "only", Owner: "u", Duration: 10 * time.Minute})
	pool.SubmitPilots(site, 4, 8*time.Hour, 15*time.Minute)
	eng.Run()
	if pool.PilotsStarted != 4 || pool.PilotsRetired != 4 {
		t.Fatalf("pilots started=%d retired=%d", pool.PilotsStarted, pool.PilotsRetired)
	}
	// Each idle pilot wasted at most ~the idle timeout, not the lease.
	if wasted := pool.WastedCPUSeconds(); wasted > (4 * 20 * time.Minute).Seconds() {
		t.Fatalf("wasted %v cpu-seconds, idle guard failed", wasted)
	}
	if len(m.Jobs) != 1 {
		t.Fatalf("completed %d jobs", len(m.Jobs))
	}
}

func TestGlideinLeaseTooShortMigratesViaCheckpoint(t *testing.T) {
	eng := events.NewEngine(1)
	site := NewSite(eng, "s", 1, nil)
	m := NewMetrics(eng)
	pool := NewGlideinPool(eng, m)
	pool.AddJob(JobSpec{ID: "long", Owner: "u", Duration: 2 * time.Hour})
	// First pilot's lease is too short for the whole job: a 1h slice
	// runs, checkpoints at lease end, and the remainder migrates to the
	// second, longer pilot.
	pool.SubmitPilots(site, 1, time.Hour, 10*time.Minute)
	eng.After(90*time.Minute, func() {
		pool.SubmitPilots(site, 1, 4*time.Hour, 10*time.Minute)
	})
	eng.Run()
	if len(m.Jobs) != 1 {
		t.Fatalf("completed %d jobs (queue=%d)", len(m.Jobs), pool.QueueLen())
	}
	if pool.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", pool.Migrations)
	}
	// CPU time equals the job's true duration: the checkpoint preserved
	// the first slice's progress (no re-execution).
	if got := m.CPUHours(); got < 1.99 || got > 2.01 {
		t.Fatalf("cpu-hours = %v, want 2 (checkpointed migration, no rework)", got)
	}
	// Queue wait measures submission to FIRST execution.
	if w := m.Jobs[0].QueueWait(); w != 0 {
		t.Fatalf("queue wait = %v, want 0 (started immediately on pilot 1)", w)
	}
	// The job finished at ~2.5h: 1h slice + 30m gap + 1h remainder.
	if end := m.Jobs[0].End; end < 2*time.Hour || end > 3*time.Hour {
		t.Fatalf("completion at %v", end)
	}
}

func TestOversizedSimJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized job accepted")
		}
	}()
	eng := events.NewEngine(1)
	site := NewSite(eng, "s", 1, nil)
	site.Submit(JobSpec{ID: "big", Cpus: 2, Duration: time.Hour}, nil, nil)
}
