package credmgr

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
	"condorg/internal/obs"
)

// paddedProgram inflates a runtime program name to n bytes so staging
// spans many chunks (mirrors the condorg staging tests).
func paddedProgram(name string, n int, fill byte) []byte {
	prog := gram.Program(name)
	if len(prog) >= n {
		return prog
	}
	return append(prog, bytes.Repeat([]byte{fill}, n-len(prog))...)
}

// credChaosRuntime counts COMPLETED executions per job key (args[0]) for
// the exactly-once assertion, and advances the virtual clock a little
// inside every execution so credential lifetime drains mid-run, not just
// between scheduler events.
func credChaosRuntime(mu *sync.Mutex, completions map[string]int, clk *fakeClock) *gram.FuncRuntime {
	rt := gram.NewFuncRuntime()
	rt.Register("chaos", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		d := 30 * time.Millisecond
		if len(args) > 1 {
			if p, err := time.ParseDuration(args[1]); err == nil {
				d = p
			}
		}
		clk.Advance(2 * time.Minute) // mid-run lifetime drain
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
		mu.Lock()
		completions[args[0]]++
		mu.Unlock()
		fmt.Fprintf(stdout, "chaos done %s\n", args[0])
		return nil
	})
	return rt
}

// runCredChaosSeed drives one seeded credential-expiry schedule: two
// owners' jobs run against authenticated, scope-enforcing sites on 2-hour
// proxies while the virtual clock lurches forward 8–20 minutes per event —
// expiring proxies mid-run and mid-stage-in. The multi-tenant monitor must
// keep both owners renewed from their MyProxy accounts and re-delegate
// in-band, so every job drains to Completed with zero lost work, zero
// double executions, and zero hold/release cycles.
func runCredChaosSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clk := &fakeClock{now: time.Date(2001, 8, 6, 9, 0, 0, 0, time.UTC)}
	var mu sync.Mutex
	completions := map[string]int{}
	rt := credChaosRuntime(&mu, completions, clk)

	ca, err := gsi.NewCA("/O=Grid/CN=CA", clk.Now(), 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	owners := []string{"jfrey", "alice"}
	users := make(map[string]*gsi.Credential, len(owners))
	gridmap := map[string]string{}
	for _, o := range owners {
		u, err := ca.IssueUser("/O=Grid/CN="+o, clk.Now(), 30*24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		users[o] = u
		gridmap["/O=Grid/CN="+o] = o
	}

	// Authenticated, scope-enforcing sites: every delegation the agent
	// sends is checked against the CA anchor AND its site scope.
	var gks []string
	const nSites = 2
	for i := 0; i < nSites; i++ {
		cluster, err := lrm.NewCluster(lrm.Config{Name: fmt.Sprintf("c%d", i), Cpus: 4})
		if err != nil {
			t.Fatal(err)
		}
		site, err := gram.NewSite(gram.SiteConfig{
			Name:          fmt.Sprintf("c%d", i),
			Anchor:        ca.Certificate(),
			Gridmap:       gsi.NewGridmap(gridmap),
			Cluster:       cluster,
			Runtime:       rt,
			StateDir:      t.TempDir(),
			Clock:         clk.Now,
			CommitTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(site.Close)
		gks = append(gks, site.GatekeeperAddr())
	}

	// One MyProxy server, one account per owner, week-long deposits.
	srv, err := NewMyProxyServer(MyProxyOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mc := NewMyProxyClient(srv.Addr(), nil, clk.Now)
	defer mc.Close()
	bindings := make(map[string]condorg.MyProxyBinding, len(owners))
	for _, o := range owners {
		long, err := gsi.NewProxy(users[o], clk.Now(), 7*24*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.Store(o, "pw-"+o, long); err != nil {
			t.Fatal(err)
		}
		bindings[o] = condorg.MyProxyBinding{User: o, Pass: "pw-" + o}
	}

	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: t.TempDir(),
		Clock:    clk.Now,
		Selector: &condorg.RoundRobinSelector{Sites: gks},
		Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
		// Small chunks so the padded executables stage across many RPCs —
		// the clock lurches land mid-stage-in, not only mid-run.
		Stage: condorg.StageOptions{ChunkSize: 4 << 10, Streams: 2},
		// Per-owner bindings: the monitor renews each owner from their own
		// MyProxy account.
		Tenancy: condorg.TenancyOptions{MyProxy: bindings},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	// Each owner starts on their own short (2h) proxy — jobs must belong
	// to the subject the renewals will re-delegate, or the sites would
	// rightly refuse the mid-flight identity switch.
	for _, o := range owners {
		p, err := gsi.NewProxy(users[o], clk.Now(), 2*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		agent.SetOwnerCredential(o, p)
	}

	mon := NewMonitor(MonitorConfig{
		Agent: agent, Clock: clk.Now,
		WarnThreshold: 30 * time.Minute,
		RenewLead:     50 * time.Minute,
		RenewJitter:   10 * time.Minute,
		RenewLifetime: 2 * time.Hour,
		MyProxy:       mc,
	})
	defer mon.Stop()

	submitJob := func(i int, owner string) string {
		d := time.Duration(30+rng.Intn(90)) * time.Millisecond
		id, err := agent.Submit(condorg.SubmitRequest{
			Owner:      owner,
			Executable: paddedProgram("chaos", 24<<10, byte('a'+i)),
			Args:       []string{fmt.Sprintf("j%d", i), d.String()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	ids := map[string]string{} // job id -> completion key
	job := 0
	for _, o := range owners {
		for k := 0; k < 2; k++ {
			ids[submitJob(job, o)] = fmt.Sprintf("j%d", job)
			job++
		}
	}

	// The storm: the virtual clock lurches forward while jobs stage and
	// run; the monitor scans after every lurch, as its Start loop would.
	// Fresh jobs join mid-storm so some submissions ride freshly renewed
	// proxies and some staging windows straddle a renewal.
	for ev := 0; ev < 14; ev++ {
		time.Sleep(time.Duration(20+rng.Intn(40)) * time.Millisecond)
		clk.Advance(time.Duration(8+rng.Intn(13)) * time.Minute)
		mon.Scan()
		if ev == 3 || ev == 7 {
			o := owners[rng.Intn(len(owners))]
			ids[submitJob(job, o)] = fmt.Sprintf("j%d", job)
			job++
		}
	}
	mon.Scan()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := agent.WaitAll(ctx); err != nil {
		for id := range ids {
			info, _ := agent.Status(id)
			t.Logf("job %s: state=%v hold=%q err=%q", id, info.State, info.HoldReason, info.Error)
		}
		t.Fatalf("queue never drained: %v", err)
	}

	st := mon.Stats()
	if st.Renewals < 1 {
		t.Fatalf("storm finished with zero proactive renewals: %+v", st)
	}
	if st.LastErr != nil {
		t.Fatalf("scan error during storm: %v", st.LastErr)
	}

	credRefreshes := 0
	for id, key := range ids {
		info, err := agent.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != condorg.Completed {
			t.Fatalf("job %s finished as %v (hold=%q err=%q)", id, info.State, info.HoldReason, info.Error)
		}
		mu.Lock()
		n := completions[key]
		mu.Unlock()
		if n < 1 {
			t.Fatalf("job %s reported Completed but never ran (lost work)", id)
		}
		tl, err := agent.Trace(id)
		if err != nil {
			t.Fatal(err)
		}
		if n > info.Resubmits+info.Migrations+1 {
			t.Fatalf("job %s ran to completion %d times with %d resubmits — double execution\ntrace: %+v",
				id, n, info.Resubmits, tl.Events)
		}
		for _, evt := range tl.Events {
			switch evt.Phase {
			case obs.PhaseCredRefresh:
				if evt.Class == "" {
					credRefreshes++
				}
			case obs.PhaseHold, obs.PhaseRelease:
				// Proactive renewal + in-band re-delegation means the
				// expiring proxies never parked a single job.
				t.Fatalf("job %s saw %q during the storm — renewal was not in-band:\n%+v",
					id, evt.Phase, tl.Events)
			}
		}
	}
	if credRefreshes < 1 {
		t.Fatal("storm finished without a single successful in-band re-delegation")
	}
}

// TestCredChaos is the seeded credential-expiry storm; each seed is one
// reproducible schedule:
//
//	go test -run 'TestCredChaos/seed=2' ./internal/credmgr/
func TestCredChaos(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if !t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runCredChaosSeed(t, seed) }) {
			t.Fatalf("credential chaos failed at seed %d; reproduce with: go test -run 'TestCredChaos/seed=%d' ./internal/credmgr/", seed, seed)
		}
	}
}
