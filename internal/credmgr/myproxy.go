package credmgr

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// MyProxyService is the wire service name.
const MyProxyService = "myproxy"

// MyProxyServer stores long-lived proxy credentials on a secure server so
// that "remote services acting on behalf of the user can then obtain
// short-lived proxies" (§4.3, citing [23]). Stored credentials are
// password-protected; only the MyProxy server and the agent ever see the
// long-lived proxy.
type MyProxyServer struct {
	srv   *wire.Server
	clock gsi.Clock
	mu    sync.Mutex
	store map[string]*myproxyEntry
}

type myproxyEntry struct {
	passHash [32]byte
	cred     *gsi.Credential
}

// MyProxyOptions configures a server.
type MyProxyOptions struct {
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
	// Addr pins the listen address; empty selects a fresh loopback port.
	Addr string
}

// NewMyProxyServer starts a credential repository.
func NewMyProxyServer(opts MyProxyOptions) (*MyProxyServer, error) {
	if opts.Clock == nil {
		opts.Clock = gsi.WallClock
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	srv, err := wire.NewServerAddr(opts.Addr, wire.ServerConfig{
		Name:   MyProxyService,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	s := &MyProxyServer{srv: srv, clock: opts.Clock, store: make(map[string]*myproxyEntry)}
	srv.Handle("myproxy.store", s.handleStore)
	srv.Handle("myproxy.get", s.handleGet)
	srv.Handle("myproxy.destroy", s.handleDestroy)
	return s, nil
}

// Addr returns host:port.
func (s *MyProxyServer) Addr() string { return s.srv.Addr() }

// Close stops the server.
func (s *MyProxyServer) Close() error { return s.srv.Close() }

type storeReq struct {
	User string `json:"user"`
	Pass string `json:"pass"`
	Cred []byte `json:"cred"`
}

func (s *MyProxyServer) handleStore(_ string, body json.RawMessage) (any, error) {
	var req storeReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	cred, err := gsi.DecodeCredential(req.Cred)
	if err != nil {
		return nil, fmt.Errorf("myproxy: bad credential: %w", err)
	}
	if cred.Expired(s.clock()) {
		return nil, fmt.Errorf("myproxy: refusing to store an expired credential")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store[req.User] = &myproxyEntry{passHash: sha256.Sum256([]byte(req.Pass)), cred: cred}
	return struct{}{}, nil
}

type getReq struct {
	User        string `json:"user"`
	Pass        string `json:"pass"`
	LifetimeSec int    `json:"lifetime_sec"`
}

type getResp struct {
	Cred []byte `json:"cred"`
}

func (s *MyProxyServer) handleGet(_ string, body json.RawMessage) (any, error) {
	var req getReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	entry, ok := s.store[req.User]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("myproxy: no credential stored for %q", req.User)
	}
	hash := sha256.Sum256([]byte(req.Pass))
	if subtle.ConstantTimeCompare(hash[:], entry.passHash[:]) != 1 {
		return nil, fmt.Errorf("myproxy: bad password for %q", req.User)
	}
	lifetime := time.Duration(req.LifetimeSec) * time.Second
	if lifetime <= 0 {
		lifetime = 12 * time.Hour
	}
	proxy, err := gsi.NewProxy(entry.cred, s.clock(), lifetime)
	if err != nil {
		return nil, fmt.Errorf("myproxy: stored credential: %w", err)
	}
	data, err := gsi.EncodeCredential(proxy)
	if err != nil {
		return nil, err
	}
	return getResp{Cred: data}, nil
}

type destroyReq struct {
	User string `json:"user"`
	Pass string `json:"pass"`
}

func (s *MyProxyServer) handleDestroy(_ string, body json.RawMessage) (any, error) {
	var req destroyReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, ok := s.store[req.User]
	if !ok {
		return struct{}{}, nil
	}
	hash := sha256.Sum256([]byte(req.Pass))
	if subtle.ConstantTimeCompare(hash[:], entry.passHash[:]) != 1 {
		return nil, fmt.Errorf("myproxy: bad password for %q", req.User)
	}
	delete(s.store, req.User)
	return struct{}{}, nil
}

// MyProxyClient talks to a MyProxy server.
type MyProxyClient struct {
	wc    *wire.Client
	clock gsi.Clock
}

// NewMyProxyClient connects to the server at addr.
func NewMyProxyClient(addr string, cred *gsi.Credential, clock gsi.Clock) *MyProxyClient {
	return &MyProxyClient{
		wc: wire.Dial(addr, wire.ClientConfig{
			ServerName: MyProxyService,
			Credential: cred,
			Clock:      clock,
			Timeout:    2 * time.Second,
		}),
		clock: clock,
	}
}

// Close releases the connection.
func (c *MyProxyClient) Close() error { return c.wc.Close() }

// Store deposits a long-lived credential under a password.
func (c *MyProxyClient) Store(user, pass string, cred *gsi.Credential) error {
	data, err := gsi.EncodeCredential(cred)
	if err != nil {
		return err
	}
	return c.wc.Call("myproxy.store", storeReq{User: user, Pass: pass, Cred: data}, nil)
}

// Get fetches a fresh short-lived proxy derived from the stored credential.
func (c *MyProxyClient) Get(user, pass string, lifetime time.Duration) (*gsi.Credential, error) {
	var resp getResp
	err := c.wc.Call("myproxy.get", getReq{User: user, Pass: pass, LifetimeSec: int(lifetime / time.Second)}, &resp)
	if err != nil {
		return nil, err
	}
	return gsi.DecodeCredential(resp.Cred)
}

// Destroy removes the stored credential.
func (c *MyProxyClient) Destroy(user, pass string) error {
	return c.wc.Call("myproxy.destroy", destroyReq{User: user, Pass: pass}, nil)
}
