package credmgr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gram"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// world sets up a CA, a user credential, a site, and an agent.
type world struct {
	ca    *gsi.CA
	user  *gsi.Credential
	clk   *fakeClock
	agent *condorg.Agent
	site  *gram.Site
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := &fakeClock{now: time.Date(2001, 8, 6, 9, 0, 0, 0, time.UTC)}
	ca, err := gsi.NewCA("/O=Grid/CN=CA", clk.Now(), 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser("/O=Grid/CN=jfrey", clk.Now(), 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cluster, _ := lrm.NewCluster(lrm.Config{Name: "s", Cpus: 4})
	rt := gram.NewFuncRuntime()
	rt.Register("task", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		d := 10 * time.Millisecond
		if len(args) > 0 {
			if p, err := time.ParseDuration(args[0]); err == nil {
				d = p
			}
		}
		select {
		case <-time.After(d):
			fmt.Fprintln(stdout, "ok")
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	site, err := gram.NewSite(gram.SiteConfig{
		Name: "s", Cluster: cluster, Runtime: rt, StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)

	proxy, err := gsi.NewProxy(user, clk.Now(), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir:   t.TempDir(),
		Credential: proxy,
		Clock:      clk.Now,
		Selector:   condorg.StaticSelector(site.GatekeeperAddr()),
		Probe:      condorg.ProbeOptions{Interval: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)
	return &world{ca: ca, user: user, clk: clk, agent: agent, site: site}
}

func (w *world) submitLong(t *testing.T) string {
	t.Helper()
	id, err := w.agent.Submit(condorg.SubmitRequest{
		Owner: "jfrey", Executable: gram.Program("task"), Args: []string{"30s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestWarnBeforeExpiry(t *testing.T) {
	w := newWorld(t)
	id := w.submitLong(t)
	defer w.agent.Remove(id)
	mon := NewMonitor(MonitorConfig{
		Agent: w.agent, Owner: "jfrey", Clock: w.clk.Now, WarnThreshold: time.Hour,
	})
	// 2h left: no warning.
	if res := mon.Scan(); res.Warned || len(res.Held) != 0 {
		t.Fatalf("early scan acted: %+v", res)
	}
	// 30m left: warn once.
	w.clk.Advance(90 * time.Minute)
	res := mon.Scan()
	if !res.Warned {
		t.Fatalf("no warning at 30m left: %+v", res)
	}
	if res := mon.Scan(); res.Warned {
		t.Fatal("warning repeated on next scan")
	}
	msgs := w.agent.Mailbox().Messages("jfrey")
	if len(msgs) != 1 || !strings.Contains(msgs[0].Subject, "expiring") {
		t.Fatalf("mailbox = %+v", msgs)
	}
}

func TestExpiredCredentialHoldsJobs(t *testing.T) {
	w := newWorld(t)
	id := w.submitLong(t)
	mon := NewMonitor(MonitorConfig{
		Agent: w.agent, Owner: "jfrey", Clock: w.clk.Now, WarnThreshold: time.Hour,
	})
	w.clk.Advance(3 * time.Hour) // proxy (2h) now expired
	res := mon.Scan()
	if len(res.Held) != 1 || res.Held[0] != id {
		t.Fatalf("held = %v", res.Held)
	}
	info, _ := w.agent.Status(id)
	if info.State != condorg.Held || !strings.Contains(info.HoldReason, "credential") {
		t.Fatalf("job after expiry: %+v", info)
	}
	msgs := w.agent.Mailbox().Messages("jfrey")
	found := false
	for _, m := range msgs {
		if strings.Contains(m.Subject, "expired") && strings.Contains(m.Body, "cannot run again until") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no expiry e-mail: %+v", msgs)
	}
	// A second scan does not re-hold (nothing left to hold).
	if res := mon.Scan(); len(res.Held) != 0 {
		t.Fatalf("second scan held again: %v", res.Held)
	}
}

func TestRefreshReleasesAndCompletes(t *testing.T) {
	w := newWorld(t)
	id, err := w.agent.Submit(condorg.SubmitRequest{
		Owner: "jfrey", Executable: gram.Program("task"), Args: []string{"50ms"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(MonitorConfig{
		Agent: w.agent, Owner: "jfrey", Clock: w.clk.Now, WarnThreshold: time.Hour,
	})
	w.clk.Advance(3 * time.Hour)
	if res := mon.Scan(); len(res.Held) != 1 {
		t.Fatalf("expiry scan held %v", res.Held)
	}
	// User refreshes: new proxy from the long-lived user credential.
	fresh, err := gsi.NewProxy(w.user, w.clk.Now(), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	res := mon.Refresh("jfrey", fresh)
	if len(res.Released) != 1 || res.Released[0] != id {
		t.Fatalf("released = %v", res.Released)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	info, err := w.agent.Wait(ctx, id)
	if err != nil || info.State != condorg.Completed {
		t.Fatalf("after refresh: %v %v (err=%q)", info.State, err, info.Error)
	}
}

func TestMonitorIgnoresIdleUsers(t *testing.T) {
	w := newWorld(t)
	mon := NewMonitor(MonitorConfig{
		Agent: w.agent, Owner: "jfrey", Clock: w.clk.Now, WarnThreshold: time.Hour,
	})
	w.clk.Advance(3 * time.Hour) // expired, but no queued jobs
	if res := mon.Scan(); res.Warned || len(res.Held) != 0 {
		t.Fatalf("monitor acted with no pending jobs: %+v", res)
	}
}

func TestMyProxyStoreGetDestroy(t *testing.T) {
	clk := &fakeClock{now: time.Date(2001, 8, 6, 9, 0, 0, 0, time.UTC)}
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", clk.Now(), 365*24*time.Hour)
	user, _ := ca.IssueUser("/O=Grid/CN=u", clk.Now(), 30*24*time.Hour)
	longProxy, _ := gsi.NewProxy(user, clk.Now(), 7*24*time.Hour) // a week

	srv, err := NewMyProxyServer(MyProxyOptions{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mc := NewMyProxyClient(srv.Addr(), nil, clk.Now)
	defer mc.Close()

	if err := mc.Store("u", "hunter2", longProxy); err != nil {
		t.Fatal(err)
	}
	short, err := mc.Get("u", "hunter2", 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if left := short.TimeLeft(clk.Now()); left > 12*time.Hour || left <= 0 {
		t.Fatalf("short proxy lifetime = %v", left)
	}
	if short.Subject() != "/O=Grid/CN=u" {
		t.Fatalf("short proxy subject = %q", short.Subject())
	}
	// Chain verifies against the CA.
	if _, err := gsi.VerifyChain(short.Chain, ca.Certificate(), clk.Now()); err != nil {
		t.Fatal(err)
	}
	// Wrong password.
	if _, err := mc.Get("u", "wrong", time.Hour); err == nil {
		t.Fatal("wrong password accepted")
	}
	// Unknown user.
	if _, err := mc.Get("ghost", "x", time.Hour); err == nil {
		t.Fatal("unknown user served")
	}
	// Destroy with wrong password fails; with right one succeeds.
	if err := mc.Destroy("u", "wrong"); err == nil {
		t.Fatal("destroy with wrong password succeeded")
	}
	if err := mc.Destroy("u", "hunter2"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Get("u", "hunter2", time.Hour); err == nil {
		t.Fatal("destroyed credential still served")
	}
}

func TestMyProxyRefusesExpiredStored(t *testing.T) {
	clk := &fakeClock{now: time.Date(2001, 8, 6, 9, 0, 0, 0, time.UTC)}
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", clk.Now(), 365*24*time.Hour)
	user, _ := ca.IssueUser("/O=Grid/CN=u", clk.Now(), 30*24*time.Hour)
	shortLived, _ := gsi.NewProxy(user, clk.Now(), time.Hour)
	srv, _ := NewMyProxyServer(MyProxyOptions{Clock: clk.Now})
	defer srv.Close()
	mc := NewMyProxyClient(srv.Addr(), nil, clk.Now)
	defer mc.Close()
	if err := mc.Store("u", "p", shortLived); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Hour)
	if _, err := mc.Get("u", "p", time.Hour); err == nil {
		t.Fatal("proxy derived from expired stored credential")
	}
	// Storing an already-expired credential is refused outright.
	if err := mc.Store("u2", "p", shortLived); err == nil {
		t.Fatal("expired credential stored")
	}
}

func TestAutoRenewalFromMyProxy(t *testing.T) {
	w := newWorld(t)
	id := w.submitLong(t)
	defer w.agent.Remove(id)

	// Deposit a week-long proxy in MyProxy.
	longProxy, _ := gsi.NewProxy(w.user, w.clk.Now(), 7*24*time.Hour)
	srv, _ := NewMyProxyServer(MyProxyOptions{Clock: w.clk.Now})
	defer srv.Close()
	mc := NewMyProxyClient(srv.Addr(), nil, w.clk.Now)
	defer mc.Close()
	if err := mc.Store("jfrey", "s3cret", longProxy); err != nil {
		t.Fatal(err)
	}

	mon := NewMonitor(MonitorConfig{
		Agent: w.agent, Owner: "jfrey", Clock: w.clk.Now,
		WarnThreshold: time.Hour,
		MyProxy:       mc, MyProxyUser: "jfrey", MyProxyPass: "s3cret",
		RenewLifetime: 12 * time.Hour,
	})
	// Let the agent proxy run down to 30 minutes: auto-renew, no hold.
	w.clk.Advance(90 * time.Minute)
	res := mon.Scan()
	if !res.Renewed {
		t.Fatalf("no auto-renewal: %+v", res)
	}
	if len(res.Held) != 0 {
		t.Fatalf("auto-renewal still held jobs: %v", res.Held)
	}
	if left := w.agent.OwnerCredential("jfrey").TimeLeft(w.clk.Now()); left < 11*time.Hour {
		t.Fatalf("owner credential lifetime after renewal = %v", left)
	}
	info, _ := w.agent.Status(id)
	if info.State == condorg.Held {
		t.Fatal("job held despite auto-renewal")
	}
	if got := mon.Stats(); got.Renewals != 1 || got.LastErr != nil {
		t.Fatalf("stats after renewal = %+v", got)
	}
}

func TestMonitorStartStop(t *testing.T) {
	w := newWorld(t)
	mon := NewMonitor(MonitorConfig{
		Agent: w.agent, Owner: "jfrey", Clock: w.clk.Now,
		Interval: 10 * time.Millisecond,
	})
	mon.Start()
	mon.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		if mon.Stats().Scans >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background monitor never scanned")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mon.Stop()
	scans := mon.Stats().Scans
	time.Sleep(50 * time.Millisecond)
	if after := mon.Stats().Scans; after != scans {
		t.Fatal("monitor kept scanning after Stop")
	}
}

// One scan loop covers every owner with queued jobs, and each owner renews
// from their own MyProxy binding — the refreshed proxies carry the right
// identities.
func TestMultiOwnerRenewalPerBinding(t *testing.T) {
	w := newWorld(t)
	alice, err := w.ca.IssueUser("/O=Grid/CN=alice", w.clk.Now(), 30*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	srvJ, _ := NewMyProxyServer(MyProxyOptions{Clock: w.clk.Now})
	defer srvJ.Close()
	srvA, _ := NewMyProxyServer(MyProxyOptions{Clock: w.clk.Now})
	defer srvA.Close()
	longJ, _ := gsi.NewProxy(w.user, w.clk.Now(), 7*24*time.Hour)
	longA, _ := gsi.NewProxy(alice, w.clk.Now(), 7*24*time.Hour)
	mcJ := NewMyProxyClient(srvJ.Addr(), nil, w.clk.Now)
	defer mcJ.Close()
	mcA := NewMyProxyClient(srvA.Addr(), nil, w.clk.Now)
	defer mcA.Close()
	if err := mcJ.Store("jfrey", "pj", longJ); err != nil {
		t.Fatal(err)
	}
	if err := mcA.Store("alice", "pa", longA); err != nil {
		t.Fatal(err)
	}

	proxy, _ := gsi.NewProxy(w.user, w.clk.Now(), 2*time.Hour)
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir:   t.TempDir(),
		Credential: proxy,
		Clock:      w.clk.Now,
		Selector:   condorg.StaticSelector(w.site.GatekeeperAddr()),
		Probe:      condorg.ProbeOptions{Interval: 40 * time.Millisecond},
		Tenancy: condorg.TenancyOptions{MyProxy: map[string]condorg.MyProxyBinding{
			"jfrey": {Addr: srvJ.Addr(), User: "jfrey", Pass: "pj"},
			"alice": {Addr: srvA.Addr(), User: "alice", Pass: "pa"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	for _, owner := range []string{"jfrey", "alice"} {
		if _, err := agent.Submit(condorg.SubmitRequest{
			Owner: owner, Executable: gram.Program("task"), Args: []string{"30s"},
		}); err != nil {
			t.Fatal(err)
		}
	}

	mon := NewMonitor(MonitorConfig{
		Agent: agent, Clock: w.clk.Now, WarnThreshold: time.Hour,
		RenewLifetime: 12 * time.Hour,
	})
	defer mon.Stop()
	w.clk.Advance(90 * time.Minute) // both owners down to 30m
	res := mon.Scan()
	if len(res.Owners) != 2 {
		t.Fatalf("scanned owners = %+v", res.Owners)
	}
	for _, os := range res.Owners {
		if !os.Renewed || os.Err != nil || len(os.Held) != 0 {
			t.Fatalf("owner %q not renewed cleanly: %+v", os.Owner, os)
		}
	}
	if got := mon.Stats().Renewals; got != 2 {
		t.Fatalf("renewals = %d", got)
	}
	// Each owner's fresh proxy came from *their* server: the subjects differ.
	if s := agent.OwnerCredential("jfrey").Subject(); s != "/O=Grid/CN=jfrey" {
		t.Fatalf("jfrey renewed as %q", s)
	}
	if s := agent.OwnerCredential("alice").Subject(); s != "/O=Grid/CN=alice" {
		t.Fatalf("alice renewed as %q", s)
	}
}

// A failed renewal is not swallowed: Stats carries a typed *ScanError, the
// owner is notified, and the warn/hold ladder still runs on the old proxy.
func TestScanErrorSurfaced(t *testing.T) {
	w := newWorld(t)
	id := w.submitLong(t)
	srv, _ := NewMyProxyServer(MyProxyOptions{Clock: w.clk.Now})
	defer srv.Close()
	mc := NewMyProxyClient(srv.Addr(), nil, w.clk.Now)
	defer mc.Close()
	// Nothing stored under "jfrey": every renewal attempt fails.
	mon := NewMonitor(MonitorConfig{
		Agent: w.agent, Owner: "jfrey", Clock: w.clk.Now, WarnThreshold: time.Hour,
		MyProxy: mc, MyProxyUser: "jfrey", MyProxyPass: "nope",
	})
	w.clk.Advance(90 * time.Minute)
	res := mon.Scan()
	if len(res.Owners) != 1 || res.Owners[0].Err == nil {
		t.Fatalf("scan error not reported: %+v", res.Owners)
	}
	if !res.Warned {
		t.Fatal("failed renewal suppressed the expiry warning")
	}
	var se *ScanError
	if err := mon.Stats().LastErr; !errors.As(err, &se) || se.Owner != "jfrey" || se.Op != "renew" {
		t.Fatalf("Stats().LastErr = %v", err)
	}
	found := false
	for _, m := range w.agent.Mailbox().Messages("jfrey") {
		if strings.Contains(m.Subject, "renewal failed") {
			found = true
		}
	}
	if !found {
		t.Fatal("no renewal-failure notification")
	}
	// The proxy eventually expires with renewal still failing: jobs hold.
	w.clk.Advance(time.Hour)
	if res := mon.Scan(); len(res.Held) != 1 || res.Held[0] != id {
		t.Fatalf("expiry with broken MyProxy did not hold: %+v", res)
	}
}

// The per-owner renewal jitter is deterministic and bounded.
func TestRenewJitterDeterministic(t *testing.T) {
	mon := NewMonitor(MonitorConfig{
		Agent: nil, Clock: gsi.WallClock,
		RenewLead: time.Hour, RenewJitter: 30 * time.Minute,
	})
	a, b := mon.leadFor("alice"), mon.leadFor("bob")
	for _, d := range []time.Duration{a, b} {
		if d < time.Hour || d >= 90*time.Minute {
			t.Fatalf("lead %v outside [1h, 1h30m)", d)
		}
	}
	if a == b {
		t.Fatal("distinct owners landed on identical jittered leads")
	}
	if mon.leadFor("alice") != a {
		t.Fatal("jitter not stable across calls")
	}
}
