// Package credmgr implements the credential management of §4.3 at
// multi-tenant scale. One Monitor scan loop analyzes the proxies of every
// owner with currently queued jobs: it raises alarms before expiry,
// proactively renews expiring proxies from each owner's MyProxy binding
// (with a per-owner jittered lead so a fleet of renewals never stampedes
// the MyProxy server), installs the fresh proxy through the agent — which
// re-delegates it in-band to every live JobManager, no hold/release cycle
// — and places jobs on hold with an explanatory notification only when a
// proxy actually expires. The package also provides the MyProxy server and
// client: long-lived credentials stay on the password-protected server,
// and the agent fetches short-lived proxies from it, limiting exposure of
// the long-lived credential.
package credmgr

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gsi"
	"condorg/internal/obs"
)

// HoldReason marks holds placed by the monitor when a proxy has expired.
const HoldReason = "credential expired"

// holdPrefix matches every credential-caused hold reason: the monitor's
// HoldReason, the GridManager's submit-time "credential rejected by ..."
// holds, and its "credential re-delegation ... failed" fallback holds. A
// successful renewal releases all of them.
const holdPrefix = "credential"

// MonitorConfig configures a credential monitor.
type MonitorConfig struct {
	// Agent is the Condor-G agent whose credentials are watched.
	Agent *condorg.Agent
	// Owner restricts the monitor to one user. Empty (the default) scans
	// every owner with queued jobs — "the agent ... periodically analyzes
	// the credentials for all users with currently queued jobs."
	Owner string
	// Clock drives expiry decisions (virtual in tests).
	Clock gsi.Clock
	// WarnThreshold raises a reminder notification when less than this
	// lifetime remains ("credential alarms", §4.3).
	WarnThreshold time.Duration
	// Interval is the scan period.
	Interval time.Duration
	// RenewLead is the remaining lifetime below which an owner with a
	// MyProxy binding is renewed proactively (default: WarnThreshold).
	RenewLead time.Duration
	// RenewJitter widens each owner's effective lead by a deterministic
	// per-owner amount in [0, RenewJitter), spreading a fleet of owners'
	// renewals across the window instead of firing them all on the same
	// scan. Zero disables the jitter.
	RenewJitter time.Duration
	// MyProxy, when set, is the default MyProxy client: used for owners
	// whose binding names no server of its own, and — together with
	// MyProxyUser/MyProxyPass — for owners with no binding at all (the
	// single-tenant configuration).
	MyProxy *MyProxyClient
	// MyProxyUser and MyProxyPass authenticate renewal fetches for owners
	// without a per-owner binding.
	MyProxyUser string
	// MyProxyPass is the password paired with MyProxyUser.
	MyProxyPass string
	// RenewLifetime is the lifetime requested for auto-renewed proxies.
	RenewLifetime time.Duration
}

// Monitor watches the credentials of the agent's owners.
type Monitor struct {
	cfg MonitorConfig

	mu       sync.Mutex
	warned   map[string]bool           // per-owner: alarm already sent
	clients  map[string]*MyProxyClient // dialed per-binding servers, by address
	scans    int
	renewals int
	lastErr  error
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewMonitor creates a monitor (call Start for the background loop, or
// Scan from a test for deterministic stepping).
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	if cfg.WarnThreshold == 0 {
		cfg.WarnThreshold = time.Hour
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Minute
	}
	if cfg.RenewLead == 0 {
		cfg.RenewLead = cfg.WarnThreshold
	}
	if cfg.RenewLifetime == 0 {
		cfg.RenewLifetime = 12 * time.Hour
	}
	return &Monitor{
		cfg:     cfg,
		warned:  make(map[string]bool),
		clients: make(map[string]*MyProxyClient),
	}
}

// ScanError reports one owner's failed scan operation; it unwraps to the
// underlying cause.
type ScanError struct {
	// Owner is the user whose scan step failed.
	Owner string
	// Op names the step: "renew" or "bootstrap".
	Op string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *ScanError) Error() string {
	return fmt.Sprintf("credmgr: %s for owner %q: %v", e.Op, e.Owner, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ScanError) Unwrap() error { return e.Err }

// MonitorStats is a snapshot of the monitor's counters.
type MonitorStats struct {
	// Scans counts completed scan passes.
	Scans int
	// Renewals counts successful proactive renewals across all owners.
	Renewals int
	// LastErr is the most recent scan failure (typed *ScanError naming
	// the owner and operation), nil after a subsequent success. Start's
	// background loop records failures here instead of dropping them.
	LastErr error
}

// Stats reports scan and renewal counts plus the last scan error.
func (m *Monitor) Stats() MonitorStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorStats{Scans: m.scans, Renewals: m.renewals, LastErr: m.lastErr}
}

// OwnerScan is one owner's slice of a scan pass.
type OwnerScan struct {
	// Owner is the user this slice describes.
	Owner string
	// TimeLeft is the owner's proxy lifetime remaining after the pass.
	TimeLeft time.Duration
	// Warned reports that the expiry alarm was sent this pass.
	Warned bool
	// Renewed reports a successful proactive renewal this pass.
	Renewed bool
	// Held lists jobs placed on hold because the proxy expired.
	Held []string
	// Released lists jobs released after a renewal.
	Released []string
	// Err is the pass's failure for this owner, if any (*ScanError).
	Err error
}

// ScanResult aggregates one scan pass. The scalar fields fold every
// scanned owner together (TimeLeft is the minimum observed); Owners holds
// the per-owner detail.
type ScanResult struct {
	// TimeLeft is the smallest remaining proxy lifetime across scanned
	// owners (zero when no owner had queued jobs).
	TimeLeft time.Duration
	// Warned reports that at least one owner was alarmed this pass.
	Warned bool
	// Held lists every job held this pass, across owners.
	Held []string
	// Renewed reports that at least one owner was renewed this pass.
	Renewed bool
	// Released lists every job released this pass, across owners.
	Released []string
	// Owners holds the per-owner detail, in scan order.
	Owners []OwnerScan
}

// Scan analyzes every watched owner's credential once. "The agent ...
// periodically analyzes the credentials for all users with currently
// queued jobs."
func (m *Monitor) Scan() ScanResult {
	m.mu.Lock()
	m.scans++
	m.mu.Unlock()
	agent := m.cfg.Agent
	owners := []string{m.cfg.Owner}
	if m.cfg.Owner == "" {
		owners = agent.Owners()
	}
	var res ScanResult
	seen := false
	for _, owner := range owners {
		if !agent.HasPendingJobs(owner) {
			continue
		}
		os := m.scanOwner(owner)
		res.Owners = append(res.Owners, os)
		if !seen || os.TimeLeft < res.TimeLeft {
			res.TimeLeft = os.TimeLeft
		}
		seen = true
		res.Warned = res.Warned || os.Warned
		res.Renewed = res.Renewed || os.Renewed
		res.Held = append(res.Held, os.Held...)
		res.Released = append(res.Released, os.Released...)
	}
	return res
}

// scanOwner runs one owner's analysis: proactive renewal first (it
// preempts both the alarm and the hold), then the §4.3 warn/hold ladder.
func (m *Monitor) scanOwner(owner string) OwnerScan {
	agent := m.cfg.Agent
	os := OwnerScan{Owner: owner}
	now := m.cfg.Clock()
	cred := agent.OwnerCredential(owner)
	if cred != nil {
		os.TimeLeft = cred.TimeLeft(now)
	}

	client, user, pass, bound := m.bindingFor(owner)
	if bound && (cred == nil || os.TimeLeft < m.leadFor(owner)) {
		op := "renew"
		if cred == nil {
			op = "bootstrap" // no proxy yet: fetch the first one
		}
		fresh, err := client.Get(user, pass, m.cfg.RenewLifetime)
		if err == nil {
			agent.Obs().Histogram("cred_renew_lead_seconds").Observe(os.TimeLeft.Seconds())
			agent.SetOwnerCredential(owner, fresh)
			m.mu.Lock()
			m.renewals++
			m.lastErr = nil
			delete(m.warned, owner)
			m.mu.Unlock()
			agent.Obs().Counter(obs.Key("cred_renewals_total", "owner", owner)).Inc()
			os.Renewed = true
			os.TimeLeft = fresh.TimeLeft(now)
			// The prefix matches the monitor's expiry holds AND the
			// GridManager's credential holds (submit-time rejections,
			// exhausted re-delegations), so a renewal frees everything
			// the stale proxy parked.
			os.Released = agent.ReleaseAll(owner, holdPrefix)
			return os
		}
		os.Err = &ScanError{Owner: owner, Op: op, Err: err}
		m.noteError(os.Err, owner, op)
		agent.Notifier().Notify(owner, "MyProxy renewal failed",
			"Automatic credential renewal from MyProxy failed: "+err.Error())
	}
	if cred == nil {
		return os // nothing to analyze; submits will fail loudly
	}

	switch {
	case os.TimeLeft <= 0:
		// Expired: hold everything and tell the user how to recover.
		os.Held = agent.HoldAll(owner, HoldReason)
		if len(os.Held) > 0 {
			agent.Notifier().Notify(owner, "credentials expired — jobs held",
				"Your Grid proxy has expired. Your jobs cannot run again until "+
					"your credentials are refreshed (run grid-proxy-init, then "+
					"condorg refresh).")
		}
	case os.TimeLeft < m.cfg.WarnThreshold:
		m.mu.Lock()
		already := m.warned[owner]
		m.warned[owner] = true
		m.mu.Unlock()
		if !already {
			os.Warned = true
			agent.Notifier().Notify(owner, "credential expiring soon",
				"Your Grid proxy expires in "+os.TimeLeft.Truncate(time.Second).String()+
					". Refresh it to keep your jobs running.")
		}
	default:
		m.mu.Lock()
		delete(m.warned, owner)
		m.mu.Unlock()
	}
	return os
}

// bindingFor resolves owner's renewal source: the agent's per-owner
// MyProxy binding first (dialing its server on demand), then the
// monitor-wide default account.
func (m *Monitor) bindingFor(owner string) (client *MyProxyClient, user, pass string, ok bool) {
	if b, bound := m.cfg.Agent.MyProxyBinding(owner); bound {
		c := m.cfg.MyProxy
		if b.Addr != "" {
			c = m.clientFor(b.Addr)
		}
		if c == nil {
			return nil, "", "", false
		}
		return c, b.User, b.Pass, true
	}
	if m.cfg.MyProxy != nil {
		return m.cfg.MyProxy, m.cfg.MyProxyUser, m.cfg.MyProxyPass, true
	}
	return nil, "", "", false
}

// clientFor returns (dialing once) the client for a binding's own server.
func (m *Monitor) clientFor(addr string) *MyProxyClient {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.clients[addr]; c != nil {
		return c
	}
	c := NewMyProxyClient(addr, nil, m.cfg.Clock)
	m.clients[addr] = c
	return c
}

// leadFor returns owner's effective renewal lead: RenewLead plus a
// deterministic per-owner jitter in [0, RenewJitter) derived from a hash
// of the owner name — stable across scans and restarts, so each owner
// renews at a consistent point in the window while the fleet spreads out.
func (m *Monitor) leadFor(owner string) time.Duration {
	lead := m.cfg.RenewLead
	if m.cfg.RenewJitter > 0 {
		h := fnv.New64a()
		h.Write([]byte(owner))
		lead += time.Duration(h.Sum64() % uint64(m.cfg.RenewJitter))
	}
	return lead
}

// noteError records a scan failure where Stats can surface it and counts
// it in cred_scan_errors_total — Start's background loop must not swallow
// failures silently.
func (m *Monitor) noteError(err error, owner, op string) {
	m.mu.Lock()
	m.lastErr = err
	m.mu.Unlock()
	m.cfg.Agent.Obs().Counter(obs.Key("cred_scan_errors_total", "owner", owner, "op", op)).Inc()
}

// Refresh installs a user-supplied fresh proxy for owner: the owner's
// GridManager switches to it, the proxy is re-delegated in-band to every
// live JobManager, and jobs held for credential reasons are released. An
// empty owner refreshes the agent-wide default credential instead (owners
// renewed individually keep their own, newer proxies) and releases every
// owner's credential holds.
func (m *Monitor) Refresh(owner string, cred *gsi.Credential) ScanResult {
	agent := m.cfg.Agent
	var res ScanResult
	res.TimeLeft = cred.TimeLeft(m.cfg.Clock())
	if owner == "" {
		agent.SetCredential(cred)
		for _, o := range agent.Owners() {
			res.Released = append(res.Released, agent.ReleaseAll(o, holdPrefix)...)
			m.mu.Lock()
			delete(m.warned, o)
			m.mu.Unlock()
		}
		return res
	}
	agent.SetOwnerCredential(owner, cred)
	m.mu.Lock()
	delete(m.warned, owner)
	m.mu.Unlock()
	res.Released = agent.ReleaseAll(owner, holdPrefix)
	return res
}

// Start runs Scan on the configured interval until Stop.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.stopCh != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.stopCh = stop
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				m.Scan()
			}
		}
	}()
}

// Stop halts the background loop and releases any per-binding MyProxy
// connections the monitor dialed.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop := m.stopCh
	m.stopCh = nil
	clients := m.clients
	m.clients = make(map[string]*MyProxyClient)
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		m.wg.Wait()
	}
	for _, c := range clients {
		c.Close()
	}
}
