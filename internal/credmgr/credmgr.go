// Package credmgr implements the credential management of §4.3: a monitor
// that periodically analyzes the proxies of users with queued jobs, raises
// alarms before expiry, places jobs on hold (with an explanatory e-mail)
// when a proxy expires, and releases + re-forwards after a refresh; plus a
// MyProxy server from which the agent can fetch fresh short-lived proxies
// automatically, limiting exposure of the long-lived credential.
package credmgr

import (
	"sync"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/gsi"
)

// HoldReason marks holds placed by the monitor, so only those are released
// on refresh.
const HoldReason = "credential expired"

// MonitorConfig configures a credential monitor.
type MonitorConfig struct {
	// Agent is the Condor-G agent whose credential is watched.
	Agent *condorg.Agent
	// Owner is the user the agent's credential belongs to.
	Owner string
	// Clock drives expiry decisions (virtual in tests).
	Clock gsi.Clock
	// WarnThreshold raises a reminder e-mail when less than this
	// lifetime remains ("credential alarms", §4.3).
	WarnThreshold time.Duration
	// Interval is the scan period.
	Interval time.Duration
	// MyProxy, when set, enables automatic renewal: expiring proxies are
	// replaced from the MyProxy server without user action.
	MyProxy *MyProxyClient
	// MyProxyUser and MyProxyPass authenticate the renewal fetch.
	MyProxyUser string
	MyProxyPass string
	// RenewLifetime is the lifetime requested for auto-renewed proxies.
	RenewLifetime time.Duration
}

// Monitor watches the agent's credential.
type Monitor struct {
	cfg MonitorConfig

	mu       sync.Mutex
	warned   bool
	held     bool
	scans    int
	renewals int
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewMonitor creates a monitor (call Start for the background loop, or
// Scan from a test for deterministic stepping).
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	if cfg.WarnThreshold == 0 {
		cfg.WarnThreshold = time.Hour
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Minute
	}
	if cfg.RenewLifetime == 0 {
		cfg.RenewLifetime = 12 * time.Hour
	}
	return &Monitor{cfg: cfg}
}

// Stats reports scan and renewal counts.
func (m *Monitor) Stats() (scans, renewals int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scans, m.renewals
}

// Scan performs one analysis pass and reports what it did.
type ScanResult struct {
	TimeLeft time.Duration
	Warned   bool
	Held     []string
	Renewed  bool
	Released []string
}

// Scan analyzes the credential once. "The agent ... periodically analyzes
// the credentials for all users with currently queued jobs."
func (m *Monitor) Scan() ScanResult {
	m.mu.Lock()
	m.scans++
	m.mu.Unlock()
	agent, owner := m.cfg.Agent, m.cfg.Owner
	var res ScanResult
	if !agent.HasPendingJobs(owner) {
		return res
	}
	cred := agent.Credential()
	if cred == nil {
		return res
	}
	now := m.cfg.Clock()
	res.TimeLeft = cred.TimeLeft(now)

	// Auto-renewal from MyProxy preempts both the alarm and the hold.
	if m.cfg.MyProxy != nil && res.TimeLeft < m.cfg.WarnThreshold {
		fresh, err := m.cfg.MyProxy.Get(m.cfg.MyProxyUser, m.cfg.MyProxyPass, m.cfg.RenewLifetime)
		if err == nil {
			agent.SetCredential(fresh)
			m.mu.Lock()
			m.renewals++
			m.warned = false
			m.mu.Unlock()
			res.Renewed = true
			res.TimeLeft = fresh.TimeLeft(now)
			if m.takeHeldFlag() {
				res.Released = agent.ReleaseAll(owner, HoldReason)
			}
			return res
		}
		agent.Notifier().Notify(owner, "MyProxy renewal failed",
			"Automatic credential renewal from MyProxy failed: "+err.Error())
	}

	switch {
	case res.TimeLeft <= 0:
		// Expired: hold everything and tell the user how to recover.
		res.Held = agent.HoldAll(owner, HoldReason)
		if len(res.Held) > 0 {
			m.mu.Lock()
			m.held = true
			m.mu.Unlock()
			agent.Notifier().Notify(owner, "credentials expired — jobs held",
				"Your Grid proxy has expired. Your jobs cannot run again until "+
					"your credentials are refreshed (run grid-proxy-init, then "+
					"condorg refresh).")
		}
	case res.TimeLeft < m.cfg.WarnThreshold:
		m.mu.Lock()
		already := m.warned
		m.warned = true
		m.mu.Unlock()
		if !already {
			res.Warned = true
			agent.Notifier().Notify(owner, "credential expiring soon",
				"Your Grid proxy expires in "+res.TimeLeft.Truncate(time.Second).String()+
					". Refresh it to keep your jobs running.")
		}
	default:
		m.mu.Lock()
		m.warned = false
		m.mu.Unlock()
	}
	return res
}

func (m *Monitor) takeHeldFlag() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.held
	m.held = false
	return h
}

// Refresh installs a user-supplied fresh proxy: the agent switches to it,
// re-forwards it to every active JobManager, and jobs held for expiry are
// released.
func (m *Monitor) Refresh(cred *gsi.Credential) ScanResult {
	m.cfg.Agent.SetCredential(cred)
	m.mu.Lock()
	m.warned = false
	m.mu.Unlock()
	var res ScanResult
	res.TimeLeft = cred.TimeLeft(m.cfg.Clock())
	if m.takeHeldFlag() {
		res.Released = m.cfg.Agent.ReleaseAll(m.cfg.Owner, HoldReason)
	} else {
		// Release any matching holds even if this monitor instance did
		// not place them (e.g. after an agent restart).
		res.Released = m.cfg.Agent.ReleaseAll(m.cfg.Owner, HoldReason)
	}
	return res
}

// Start runs Scan on the configured interval until Stop.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.stopCh != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.stopCh = stop
	m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				m.Scan()
			}
		}
	}()
}

// Stop halts the background loop.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop := m.stopCh
	m.stopCh = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		m.wg.Wait()
	}
}
