package gass

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"condorg/internal/gsi"
)

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	s, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := NewClient(nil, nil)
	t.Cleanup(c.Close)
	return s, c
}

func TestParseURL(t *testing.T) {
	u, err := ParseURL("gass://127.0.0.1:9000/jobs/1/stdout")
	if err != nil {
		t.Fatal(err)
	}
	if u.Addr != "127.0.0.1:9000" || u.Path != "jobs/1/stdout" {
		t.Fatalf("parsed %+v", u)
	}
	if u.String() != "gass://127.0.0.1:9000/jobs/1/stdout" {
		t.Fatalf("String = %s", u.String())
	}
	for _, bad := range []string{"http://x/y", "gass://", "gass://hostonly", "gass://host:1/"} {
		if _, err := ParseURL(bad); err == nil {
			t.Errorf("ParseURL(%q) should fail", bad)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, c := newPair(t)
	u := s.URLFor("input/exe")
	payload := bytes.Repeat([]byte("condor-g "), 20000) // > 1 chunk
	if err := c.WriteFile(u, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll(u)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(payload))
	}
	size, exists, err := c.Stat(u)
	if err != nil || !exists || size != int64(len(payload)) {
		t.Fatalf("stat: size=%d exists=%v err=%v", size, exists, err)
	}
}

func TestStatMissing(t *testing.T) {
	s, c := newPair(t)
	_, exists, err := c.Stat(s.URLFor("no/such/file"))
	if err != nil || exists {
		t.Fatalf("missing file: exists=%v err=%v", exists, err)
	}
}

func TestReadMissingFileFails(t *testing.T) {
	s, c := newPair(t)
	if _, err := c.ReadAll(s.URLFor("ghost")); err == nil {
		t.Fatal("read of missing file succeeded")
	}
}

func TestAppendStreaming(t *testing.T) {
	s, c := newPair(t)
	u := s.URLFor("jobs/7/stdout")
	var total int64
	for i := 0; i < 5; i++ {
		n, err := c.Append(u, []byte("line\n"))
		if err != nil {
			t.Fatal(err)
		}
		total = n
	}
	if total != 25 {
		t.Fatalf("size after appends = %d, want 25", total)
	}
	// Offset read picks up only the tail — the crash-resume pattern.
	data, eof, err := c.ReadAt(u, 20, 100)
	if err != nil || string(data) != "line\n" || !eof {
		t.Fatalf("tail read = %q eof=%v err=%v", data, eof, err)
	}
}

func TestPathEscapeRejected(t *testing.T) {
	s, c := newPair(t)
	// Plant a file outside the root.
	outside := filepath.Join(filepath.Dir(s.Root()), "secret")
	os.WriteFile(outside, []byte("x"), 0o600)
	if _, err := c.ReadAll(URL{Addr: s.Addr(), Path: "../secret"}); err == nil {
		t.Fatal("path escape allowed")
	}
}

func TestUploadDownload(t *testing.T) {
	s, c := newPair(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "exe")
	os.WriteFile(src, []byte("#!/bin/true"), 0o700)
	u := s.URLFor("staged/exe")
	if err := c.Upload(src, u); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "back", "exe")
	if err := c.Download(u, dst); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(dst)
	if string(data) != "#!/bin/true" {
		t.Fatalf("downloaded %q", data)
	}
}

func TestServerRestartNewAddress(t *testing.T) {
	// The §4.2 scenario: the submission machine restarts, the GASS server
	// comes back on a new port, and the job resumes I/O via the URL file.
	root := t.TempDir()
	s1, err := NewServer(root, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(nil, nil)
	defer c.Close()
	u1 := s1.URLFor("out")
	if _, err := c.Append(u1, []byte("before-crash\n")); err != nil {
		t.Fatal(err)
	}
	urlFile := filepath.Join(t.TempDir(), "gass.url")
	if err := WriteURLFile(urlFile, s1.Addr()); err != nil {
		t.Fatal(err)
	}
	s1.Close() // crash

	s2, err := NewServer(root, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Addr() == s1.Addr() {
		t.Skip("OS reused the port; scenario needs a new address")
	}
	if err := WriteURLFile(urlFile, s2.Addr()); err != nil {
		t.Fatal(err)
	}
	addr, err := ReadURLFile(urlFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(URL{Addr: addr, Path: "out"}, []byte("after-recovery\n")); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadAll(URL{Addr: addr, Path: "out"})
	if err != nil {
		t.Fatal(err)
	}
	want := "before-crash\nafter-recovery\n"
	if string(data) != want {
		t.Fatalf("recovered stream = %q, want %q", data, want)
	}
}

func TestAuthenticatedStaging(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	s, err := NewServer(t.TempDir(), ServerOptions{Anchor: ca.Certificate()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	anon := NewClient(nil, nil)
	defer anon.Close()
	if err := anon.WriteFile(s.URLFor("f"), []byte("x")); err == nil {
		t.Fatal("anonymous write to authenticated server succeeded")
	}

	user, _ := ca.IssueUser("/O=Grid/CN=u", now, time.Hour)
	proxy, _ := gsi.NewProxy(user, now, 30*time.Minute)
	authed := NewClient(proxy, nil)
	defer authed.Close()
	if err := authed.WriteFile(s.URLFor("f"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestURLFileMissing(t *testing.T) {
	if _, err := ReadURLFile(filepath.Join(t.TempDir(), "none")); err == nil {
		t.Fatal("missing URL file read succeeded")
	}
}

func TestEmptyWrite(t *testing.T) {
	s, c := newPair(t)
	u := s.URLFor("empty")
	if err := c.WriteFile(u, nil); err != nil {
		t.Fatal(err)
	}
	size, exists, _ := c.Stat(u)
	if !exists || size != 0 {
		t.Fatalf("empty file: exists=%v size=%d", exists, size)
	}
	data, err := c.ReadAll(u)
	if err != nil || len(data) != 0 {
		t.Fatalf("read empty: %q %v", data, err)
	}
}
