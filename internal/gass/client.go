package gass

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// Client talks to GASS servers. It caches one wire connection per server
// address and is safe for concurrent use.
type Client struct {
	cred  *gsi.Credential
	clock gsi.Clock
	mu    sync.Mutex
	conns map[string]*wire.Client
}

// NewClient creates a client that authenticates with cred (nil for
// anonymous grids, e.g. unit tests without a CA).
func NewClient(cred *gsi.Credential, clock gsi.Clock) *Client {
	if clock == nil {
		clock = gsi.WallClock
	}
	return &Client{cred: cred, clock: clock, conns: make(map[string]*wire.Client)}
}

// SetCredential swaps in a refreshed proxy for all future requests.
func (c *Client) SetCredential(cred *gsi.Credential) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cred = cred
	for _, wc := range c.conns {
		wc.SetCredential(cred)
	}
}

func (c *Client) conn(addr string) *wire.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wc, ok := c.conns[addr]; ok {
		return wc
	}
	wc := wire.Dial(addr, wire.ClientConfig{
		ServerName: ServiceName,
		Credential: c.cred,
		Clock:      c.clock,
		Timeout:    3 * time.Second,
	})
	c.conns[addr] = wc
	return wc
}

// Forget drops the cached connection for addr (after a server restart the
// next call redials automatically; Forget just frees the socket eagerly).
func (c *Client) Forget(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wc, ok := c.conns[addr]; ok {
		wc.Close()
		delete(c.conns, addr)
	}
}

// Close releases all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, wc := range c.conns {
		wc.Close()
	}
	c.conns = make(map[string]*wire.Client)
}

// Stat returns the size of the file at u and whether it exists.
func (c *Client) Stat(u URL) (size int64, exists bool, err error) {
	var resp statResp
	if err := c.conn(u.Addr).Call("gass.stat", statReq{Path: u.Path}, &resp); err != nil {
		return 0, false, err
	}
	return resp.Size, resp.Exists, nil
}

// ReadAt reads up to maxLen bytes at offset.
func (c *Client) ReadAt(u URL, offset int64, maxLen int) (data []byte, eof bool, err error) {
	var resp readResp
	if err := c.conn(u.Addr).Call("gass.read", readReq{Path: u.Path, Offset: offset, MaxLen: maxLen}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Data, resp.EOF, nil
}

// ReadAll fetches the whole file at u.
func (c *Client) ReadAll(u URL) ([]byte, error) {
	return c.ReadAllFrom(u, 0)
}

// ReadAllFrom fetches the file at u starting at byte off — the resume
// primitive: a caller that already holds the first off bytes (from an
// interrupted ReadAll) asks only for the tail.
func (c *Client) ReadAllFrom(u URL, off int64) ([]byte, error) {
	var out []byte
	for {
		data, eof, err := c.ReadAt(u, off, ChunkSize)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		off += int64(len(data))
		if eof || len(data) == 0 {
			return out, nil
		}
	}
}

// WriteFile replaces the file at u with data.
func (c *Client) WriteFile(u URL, data []byte) error {
	// First chunk truncates; the rest are positional writes.
	if len(data) == 0 {
		return c.conn(u.Addr).Call("gass.write", writeReq{Path: u.Path, Truncate: true}, nil)
	}
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		req := writeReq{Path: u.Path, Offset: int64(off), Data: data[off:end], Truncate: off == 0}
		if err := c.conn(u.Addr).Call("gass.write", req, nil); err != nil {
			return err
		}
	}
	return nil
}

// Append appends data to the file at u and returns the resulting size.
func (c *Client) Append(u URL, data []byte) (int64, error) {
	var resp appendResp
	if err := c.conn(u.Addr).Call("gass.append", appendReq{Path: u.Path, Data: data}, &resp); err != nil {
		return 0, err
	}
	return resp.Size, nil
}

// Ping checks that the server at addr is reachable.
func (c *Client) Ping(addr string) error {
	return c.conn(addr).Ping("gass.ping")
}

// Download copies the remote file at u to localPath.
func (c *Client) Download(u URL, localPath string) error {
	data, err := c.ReadAll(u)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(localPath), 0o700); err != nil {
		return err
	}
	return os.WriteFile(localPath, data, 0o700)
}

// Upload copies localPath to the remote file at u.
func (c *Client) Upload(localPath string, u URL) error {
	data, err := os.ReadFile(localPath)
	if err != nil {
		return err
	}
	return c.WriteFile(u, data)
}

// The URL-file mechanism of §4.2: a running job learns its GASS server's
// address from a file named by an environment variable; when the
// submission machine restarts with a new port, the GridManager asks the
// JobManager to rewrite that file so the job "continues file I/O after a
// crash recovery".

// WriteURLFile records the server address in path.
func WriteURLFile(path, addr string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(addr+"\n"), 0o600)
}

// ReadURLFile returns the server address recorded in path.
func ReadURLFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	addr := strings.TrimSpace(string(data))
	if addr == "" {
		return "", fmt.Errorf("gass: empty URL file %s", path)
	}
	return addr, nil
}
