// Package gass implements the Global Access to Secondary Storage service of
// §3.4: a small authenticated file service that Condor-G uses to stage
// executables and stdin to remote sites and to stream stdout/stderr back to
// the submission machine in real time.
//
// # Wire framing
//
// The service speaks the length-prefixed JSON RPC of package wire, under
// five operations: gass.stat, gass.read, gass.write, gass.append, and
// gass.ping. Every payload carries a server-relative path; the server
// confines all paths to its root directory (".." escapes are rejected).
// Reads and writes move at most ChunkSize bytes per call, so a single RPC
// is always small enough for the wire layer's framing and timeouts.
//
// # Resume contract
//
// Reads are offset-based: gass.read takes (path, offset, maxLen) and
// returns (data, eof). After a crash or connection reset the client asks
// for "everything after byte N" via ReadAllFrom — the paper's "permitting
// a client to request resending of this data after a crash". Writes are
// positional too (gass.write carries offset and a truncate flag on the
// first chunk), so an interrupted upload can be re-driven idempotently.
// GASS itself keeps no transfer state; the caller owns the offset. The
// push-model staging plane in package gram layers journaled offsets and
// content hashes on top of this primitive.
//
// A GASS URL has the form gass://host:port/relative/path.
package gass

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// ChunkSize is the transfer unit for streaming reads and writes.
const ChunkSize = 64 << 10

// ErrBadURL reports a malformed GASS URL.
var ErrBadURL = errors.New("gass: malformed URL")

// URL identifies a file on a GASS server.
type URL struct {
	Addr string // host:port
	Path string // server-relative path, no leading slash
}

// String renders the URL.
func (u URL) String() string { return "gass://" + u.Addr + "/" + u.Path }

// ParseURL parses gass://host:port/path.
func ParseURL(s string) (URL, error) {
	rest, ok := strings.CutPrefix(s, "gass://")
	if !ok {
		return URL{}, fmt.Errorf("%w: %q", ErrBadURL, s)
	}
	addr, path, ok := strings.Cut(rest, "/")
	if !ok || addr == "" || path == "" {
		return URL{}, fmt.Errorf("%w: %q", ErrBadURL, s)
	}
	return URL{Addr: addr, Path: path}, nil
}

// Server exposes a directory tree over the wire protocol.
type Server struct {
	root string
	srv  *wire.Server
	mu   sync.Mutex
}

// ServerOptions configures a GASS server.
type ServerOptions struct {
	// Anchor enables GSI authentication when non-nil.
	Anchor *gsi.Certificate
	// Clock for token verification.
	Clock gsi.Clock
	// Faults allows the failure experiments to break staging.
	Faults *wire.Faults
}

// ServiceName is the wire service name GASS servers register under; clients
// must bind their tokens to it.
const ServiceName = "gass"

// NewServer serves the tree rooted at root on a fresh loopback port.
func NewServer(root string, opts ServerOptions) (*Server, error) {
	if err := os.MkdirAll(root, 0o700); err != nil {
		return nil, err
	}
	ws, err := wire.NewServer(wire.ServerConfig{
		Name:   ServiceName,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{root: root, srv: ws}
	ws.Handle("gass.stat", s.handleStat)
	ws.Handle("gass.read", s.handleRead)
	ws.Handle("gass.write", s.handleWrite)
	ws.Handle("gass.append", s.handleAppend)
	ws.Handle("gass.ping", func(string, json.RawMessage) (any, error) { return struct{}{}, nil })
	return s, nil
}

// Addr returns host:port.
func (s *Server) Addr() string { return s.srv.Addr() }

// Root returns the served directory.
func (s *Server) Root() string { return s.root }

// URLFor returns the URL of a path under this server.
func (s *Server) URLFor(relPath string) URL { return URL{Addr: s.Addr(), Path: relPath} }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Pause and Resume simulate partitions for the fault experiments.
func (s *Server) Pause()  { s.srv.Pause() }
func (s *Server) Resume() { s.srv.Resume() }

// resolve confines a request path to the served root.
func (s *Server) resolve(p string) (string, error) {
	clean := filepath.Clean("/" + p)
	if strings.Contains(clean, "..") {
		return "", fmt.Errorf("gass: path escapes root: %q", p)
	}
	return filepath.Join(s.root, clean), nil
}

type statReq struct {
	Path string `json:"path"`
}

type statResp struct {
	Size   int64 `json:"size"`
	Exists bool  `json:"exists"`
}

func (s *Server) handleStat(_ string, body json.RawMessage) (any, error) {
	var req statReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return statResp{Exists: false}, nil
	}
	if err != nil {
		return nil, err
	}
	return statResp{Size: fi.Size(), Exists: true}, nil
}

type readReq struct {
	Path   string `json:"path"`
	Offset int64  `json:"offset"`
	MaxLen int    `json:"max_len"`
}

type readResp struct {
	Data []byte `json:"data"`
	EOF  bool   `json:"eof"`
}

func (s *Server) handleRead(_ string, body json.RawMessage) (any, error) {
	var req readReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gass: %w", err)
	}
	defer f.Close()
	if req.MaxLen <= 0 || req.MaxLen > ChunkSize {
		req.MaxLen = ChunkSize
	}
	buf := make([]byte, req.MaxLen)
	n, err := f.ReadAt(buf, req.Offset)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return readResp{Data: buf[:n], EOF: err == io.EOF}, nil
}

type writeReq struct {
	Path     string `json:"path"`
	Offset   int64  `json:"offset"`
	Data     []byte `json:"data"`
	Truncate bool   `json:"truncate"`
}

func (s *Server) handleWrite(_ string, body json.RawMessage) (any, error) {
	var req writeReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	flags := os.O_CREATE | os.O_WRONLY
	if req.Truncate {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o700)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.WriteAt(req.Data, req.Offset); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

type appendReq struct {
	Path string `json:"path"`
	Data []byte `json:"data"`
}

type appendResp struct {
	Size int64 `json:"size"` // file size after append
}

func (s *Server) handleAppend(_ string, body json.RawMessage) (any, error) {
	var req appendReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Write(req.Data); err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return appendResp{Size: fi.Size()}, nil
}
