package gass

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any file content and any (offset, length) window, ReadAt
// returns exactly the corresponding slice with a correct EOF flag.
func TestQuickReadAtWindows(t *testing.T) {
	s, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(nil, nil)
	defer c.Close()

	f := func(seed int64, size uint16, offset uint16, length uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		content := make([]byte, int(size)%5000)
		rng.Read(content)
		u := s.URLFor("prop/file")
		if err := c.WriteFile(u, content); err != nil {
			return false
		}
		off := int64(offset) % (int64(len(content)) + 10)
		maxLen := int(length)%4096 + 1
		data, eof, err := c.ReadAt(u, off, maxLen)
		if err != nil {
			return false
		}
		want := []byte{}
		if off < int64(len(content)) {
			end := off + int64(maxLen)
			if end > int64(len(content)) {
				end = int64(len(content))
			}
			want = content[off:end]
		}
		if !bytes.Equal(data, want) {
			return false
		}
		// EOF must be reported when the window reaches the end.
		if off+int64(len(data)) >= int64(len(content)) && !eof {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a sequence of random appends reassembles to exactly the
// concatenation, with sizes reported monotonically.
func TestQuickAppendSequence(t *testing.T) {
	s, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewClient(nil, nil)
	defer c.Close()

	f := func(chunks [][]byte) bool {
		u := s.URLFor("prop/append-" + randName())
		var want []byte
		var lastSize int64
		for _, ch := range chunks {
			size, err := c.Append(u, ch)
			if err != nil {
				return false
			}
			want = append(want, ch...)
			if size != int64(len(want)) || size < lastSize {
				return false
			}
			lastSize = size
		}
		if len(chunks) == 0 {
			return true
		}
		got, err := c.ReadAll(u)
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

var nameCounter int

func randName() string {
	nameCounter++
	return string(rune('a'+nameCounter%26)) + string(rune('0'+nameCounter%10)) + "x" + itoa(nameCounter)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
