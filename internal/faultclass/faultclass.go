// Package faultclass defines the typed fault taxonomy used across the
// wire, gram, and condorg layers, plus the per-endpoint circuit
// breaker that keeps one dead site from stalling the rest of the grid.
//
// The taxonomy replaces string-matched error classification: a failure
// is tagged with a Class where it is first understood (the site knows
// it lost a job across a restart; the wire client knows a timeout is
// transient), the class rides along on StatusInfo and wrapped errors,
// and recovery code branches on the class — never on error prose.
package faultclass

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Class partitions failures by the recovery action they demand.
type Class int

const (
	// Unknown is the zero value: the failure has not been classified.
	// Recovery code must treat it conservatively (as permanent for
	// remote job verdicts, as transient for transport errors).
	Unknown Class = iota
	// Transient covers failures expected to clear on their own:
	// timeouts, connection resets, partitions, open circuit breakers.
	// The right response is backoff and retry against the same site.
	Transient
	// SiteLost means the remote site accepted responsibility for the
	// job but then lost it (site restart wiped the LRM, two-phase
	// commit expired, stage-in could not complete). The job never ran
	// to completion there; resubmission is safe and required.
	SiteLost
	// Permanent covers verdicts retrying cannot change: the job itself
	// failed (bad executable, non-zero exit, cancelled). The right
	// response is to surface the failure to the user.
	Permanent
	// AuthExpired means the credential was rejected. Retrying without
	// user action is pointless; hold the job and notify (§4.3).
	AuthExpired
)

var classNames = map[Class]string{
	Unknown:     "",
	Transient:   "transient",
	SiteLost:    "site-lost",
	Permanent:   "permanent",
	AuthExpired: "auth-expired",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("faultclass(%d)", int(c))
}

// Parse maps a wire name back to a Class. Unrecognised names (from a
// newer peer) degrade to Unknown rather than failing.
func Parse(s string) Class {
	for c, name := range classNames {
		if name == s && c != Unknown {
			return c
		}
	}
	return Unknown
}

// MarshalJSON encodes the class as its wire name so frames stay
// readable and forward-compatible across versions.
func (c Class) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

func (c *Class) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	*c = Parse(s)
	return nil
}

// Fault wraps an error with its Class. It preserves the underlying
// error text and chain: errors.Is/As see straight through it.
type Fault struct {
	Class Class
	Err   error
}

// New tags err with class c. A nil err yields a generic error so the
// class is never silently lost.
func New(c Class, err error) *Fault {
	if err == nil {
		err = fmt.Errorf("%s fault", c)
	}
	return &Fault{Class: c, Err: err}
}

func (f *Fault) Error() string { return f.Err.Error() }
func (f *Fault) Unwrap() error { return f.Err }

// FaultClass implements the carrier interface ClassOf walks for.
func (f *Fault) FaultClass() Class { return f.Class }

// ClassOf extracts the Class carried anywhere in err's chain, or
// Unknown if the error is nil or untagged.
func ClassOf(err error) Class {
	if err == nil {
		return Unknown
	}
	var carrier interface{ FaultClass() Class }
	if errors.As(err, &carrier) {
		return carrier.FaultClass()
	}
	return Unknown
}
