package faultclass

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (wrapped, class Transient) when a call is
// refused because the endpoint's circuit breaker is open.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerState is the classic three-state circuit breaker state.
type BreakerState int

const (
	// Closed: calls flow normally; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: calls fast-fail without touching the network until the
	// retry deadline passes.
	Open
	// HalfOpen: one probe call has been let through; its outcome
	// decides whether the breaker closes or re-opens.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig tunes a BreakerSet. The zero value picks defaults
// suitable for the agent's probe cadence.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker. Default 3.
	Threshold int
	// BaseDelay is the first open interval; it doubles on every failed
	// half-open probe. Default 250ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Default 15s.
	MaxDelay time.Duration
	// Jitter spreads reopen deadlines by up to this fraction of the
	// delay so a fleet of agents does not stampede a recovering site.
	// 0 means the default (0.2); negative disables jitter entirely
	// (deterministic, for tests).
	Jitter float64
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
	// Seed seeds the jitter source; 0 means a time-derived seed.
	Seed int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 250 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 15 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

type breaker struct {
	state   BreakerState
	fails   int           // consecutive failures while Closed
	delay   time.Duration // current open interval
	retryAt time.Time     // when Open may transition to HalfOpen
}

// BreakerSet holds one circuit breaker per endpoint key (an address).
// All methods are safe for concurrent use.
type BreakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	rng *rand.Rand
	m   map[string]*breaker
}

// NewBreakerSet builds a set with cfg (zero fields take defaults).
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &BreakerSet{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		m:   make(map[string]*breaker),
	}
}

// Allow reports whether a call to key may proceed. When an open
// breaker's retry deadline has passed it admits exactly one probe
// (transitioning to HalfOpen); the probe's Success/Failure decides
// what happens next. A probe that never reports back (caller died)
// re-arms after another delay interval rather than wedging the key.
func (s *BreakerSet) Allow(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[key]
	if b == nil {
		return true
	}
	switch b.state {
	case Closed:
		return true
	case Open:
		if s.cfg.Now().Before(b.retryAt) {
			return false
		}
		b.state = HalfOpen
		// Re-arm so a lost probe cannot hold the breaker half-open
		// forever: if nobody reports back, the next Allow after
		// another delay becomes the new probe.
		b.retryAt = s.cfg.Now().Add(s.jittered(b.delay))
		return true
	case HalfOpen:
		// One probe is already in flight; admit another only if it
		// appears lost.
		if s.cfg.Now().Before(b.retryAt) {
			return false
		}
		b.retryAt = s.cfg.Now().Add(s.jittered(b.delay))
		return true
	}
	return true
}

// Success records a successful call: the breaker (if any) closes and
// the failure count resets.
func (s *BreakerSet) Success(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[key]; b != nil {
		delete(s.m, key)
	}
}

// Failure records a failed call. While Closed it counts toward the
// threshold; a HalfOpen probe failure re-opens with doubled delay.
func (s *BreakerSet) Failure(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[key]
	if b == nil {
		b = &breaker{}
		s.m[key] = b
	}
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= s.cfg.Threshold {
			b.state = Open
			b.delay = s.cfg.BaseDelay
			b.retryAt = s.cfg.Now().Add(s.jittered(b.delay))
		}
	case HalfOpen:
		b.state = Open
		b.delay *= 2
		if b.delay > s.cfg.MaxDelay {
			b.delay = s.cfg.MaxDelay
		}
		b.retryAt = s.cfg.Now().Add(s.jittered(b.delay))
	case Open:
		// A straggler from before the breaker opened; nothing to do.
	}
}

// BreakerInfo is a point-in-time view of one endpoint's breaker, exported
// for observability (per-site gauges, `condorg metrics`).
type BreakerInfo struct {
	State   BreakerState  `json:"state"`
	Fails   int           `json:"fails"`              // consecutive failures while Closed
	Delay   time.Duration `json:"delay,omitempty"`    // current open interval
	RetryAt time.Time     `json:"retry_at,omitempty"` // when an Open breaker admits a probe
}

// Snapshot returns the state of every tracked breaker. Endpoints whose
// breaker has closed (Success deletes the entry) do not appear; callers
// wanting a complete site list merge in their own known endpoints.
func (s *BreakerSet) Snapshot() map[string]BreakerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]BreakerInfo, len(s.m))
	for key, b := range s.m {
		out[key] = BreakerInfo{State: b.state, Fails: b.fails, Delay: b.delay, RetryAt: b.retryAt}
	}
	return out
}

// Ready reports whether a call to key would currently be admitted: the
// breaker is closed, or its retry deadline has passed and a half-open
// probe would be let through. Unlike Allow it never transitions state and
// never consumes the probe slot, so dispatchers can use it to decide
// whether to park work without racing the probe itself.
func (s *BreakerSet) Ready(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[key]
	if b == nil || b.state == Closed {
		return true
	}
	return !s.cfg.Now().Before(b.retryAt)
}

// State reports the breaker state for key (Closed if never tripped).
func (s *BreakerSet) State(key string) BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[key]; b != nil {
		return b.state
	}
	return Closed
}

// jittered widens d by up to cfg.Jitter of itself. Callers hold s.mu.
func (s *BreakerSet) jittered(d time.Duration) time.Duration {
	if s.cfg.Jitter <= 0 {
		return d
	}
	return d + time.Duration(s.rng.Float64()*s.cfg.Jitter*float64(d))
}
