package faultclass

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassOfWalksChain(t *testing.T) {
	base := errors.New("boom")
	tagged := New(SiteLost, base)
	wrapped := fmt.Errorf("probe: %w", tagged)
	if got := ClassOf(wrapped); got != SiteLost {
		t.Fatalf("ClassOf = %v, want SiteLost", got)
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("wrapping broke errors.Is")
	}
	if tagged.Error() != "boom" {
		t.Fatalf("Fault changed error text: %q", tagged.Error())
	}
	if ClassOf(nil) != Unknown || ClassOf(base) != Unknown {
		t.Fatal("nil/untagged errors must classify as Unknown")
	}
}

func TestClassJSONRoundTrip(t *testing.T) {
	for _, c := range []Class{Unknown, Transient, SiteLost, Permanent, AuthExpired} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back Class
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != c {
			t.Fatalf("round trip %v -> %s -> %v", c, data, back)
		}
	}
	// Forward compat: an unknown name from a newer peer degrades.
	var c Class
	if err := json.Unmarshal([]byte(`"from-the-future"`), &c); err != nil || c != Unknown {
		t.Fatalf("unknown name: class=%v err=%v", c, err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	set := NewBreakerSet(BreakerConfig{
		Threshold: 3,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  400 * time.Millisecond,
		Jitter:    -1, // deterministic
		Now:       func() time.Time { return now },
	})
	const key = "site-a"

	// Closed: failures below the threshold keep the breaker closed.
	set.Failure(key)
	set.Failure(key)
	if !set.Allow(key) || set.State(key) != Closed {
		t.Fatal("breaker opened below threshold")
	}
	// Third consecutive failure opens it.
	set.Failure(key)
	if set.State(key) != Open {
		t.Fatalf("state = %v, want Open", set.State(key))
	}
	if set.Allow(key) {
		t.Fatal("open breaker allowed a call")
	}

	// After the delay one probe is admitted (half-open), others refused.
	now = now.Add(101 * time.Millisecond)
	if !set.Allow(key) {
		t.Fatal("half-open probe refused")
	}
	if set.State(key) != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", set.State(key))
	}
	if set.Allow(key) {
		t.Fatal("second call admitted during half-open probe")
	}

	// Probe failure re-opens with doubled delay.
	set.Failure(key)
	if set.State(key) != Open {
		t.Fatal("failed probe did not re-open")
	}
	now = now.Add(150 * time.Millisecond) // 150 < 200 (doubled)
	if set.Allow(key) {
		t.Fatal("allowed before doubled delay elapsed")
	}
	now = now.Add(51 * time.Millisecond)
	if !set.Allow(key) {
		t.Fatal("probe refused after doubled delay")
	}

	// Probe success closes and resets.
	set.Success(key)
	if set.State(key) != Closed || !set.Allow(key) {
		t.Fatal("success did not close the breaker")
	}
	// The failure count also reset: two failures stay closed.
	set.Failure(key)
	set.Failure(key)
	if set.State(key) != Closed {
		t.Fatal("failure count not reset by success")
	}
}

func TestBreakerDelayCapAndLostProbe(t *testing.T) {
	now := time.Unix(0, 0)
	set := NewBreakerSet(BreakerConfig{
		Threshold: 1,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  200 * time.Millisecond,
		Jitter:    -1,
		Now:       func() time.Time { return now },
	})
	const key = "site-b"
	set.Failure(key)
	for i := 0; i < 5; i++ { // repeatedly fail probes; delay caps at 200ms
		now = now.Add(201 * time.Millisecond)
		if !set.Allow(key) {
			t.Fatalf("probe %d refused after max delay", i)
		}
		set.Failure(key)
	}
	// A lost probe (no Success/Failure report) re-arms instead of
	// wedging the key forever.
	now = now.Add(201 * time.Millisecond)
	if !set.Allow(key) {
		t.Fatal("probe refused")
	}
	now = now.Add(201 * time.Millisecond)
	if !set.Allow(key) {
		t.Fatal("lost probe wedged the breaker")
	}
}

func TestBreakerKeysIndependent(t *testing.T) {
	set := NewBreakerSet(BreakerConfig{Threshold: 1, Jitter: -1})
	set.Failure("dead")
	if set.State("dead") != Open {
		t.Fatal("dead key not open")
	}
	if !set.Allow("healthy") || set.State("healthy") != Closed {
		t.Fatal("healthy key affected by dead key")
	}
}
