// Package mds implements the MDS-2 information service of §3.3. Resources
// announce themselves with the Grid Resource Registration Protocol (GRRP):
// a soft-state registration carrying a ClassAd that expires unless renewed.
// Consumers discover resources with the Grid Resource Information Protocol
// (GRIP): a query whose constraint is a ClassAd expression evaluated
// against each registered ad. The aggregate directory (GIIS) is what the
// Condor-G personal broker of §4.4 queries to build candidate resource
// lists.
package mds

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"condorg/internal/classad"
	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// ServiceName is the wire service name for GIIS servers.
const ServiceName = "mds"

// DefaultTTL is the registration lifetime when the registrant does not
// choose one.
const DefaultTTL = 2 * time.Minute

// Server is a GIIS: an aggregate directory of resource ads.
type Server struct {
	srv   *wire.Server
	clock gsi.Clock
	mu    sync.Mutex
	ads   map[string]*entry // keyed by ad Name
}

type entry struct {
	ad      *classad.Ad
	expires time.Time
	owner   string // authenticated subject that registered it
}

// ServerOptions configures a GIIS server.
type ServerOptions struct {
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
	// Addr pins the listen address; empty selects a fresh loopback port.
	Addr string
}

// NewServer starts a GIIS on a fresh loopback port.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.Clock == nil {
		opts.Clock = gsi.WallClock
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	ws, err := wire.NewServerAddr(opts.Addr, wire.ServerConfig{
		Name:   ServiceName,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{srv: ws, clock: opts.Clock, ads: make(map[string]*entry)}
	ws.Handle("mds.register", s.handleRegister)
	ws.Handle("mds.unregister", s.handleUnregister)
	ws.Handle("mds.query", s.handleQuery)
	ws.Handle("mds.ping", func(string, json.RawMessage) (any, error) { return struct{}{}, nil })
	return s, nil
}

// Addr returns host:port.
func (s *Server) Addr() string { return s.srv.Addr() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// Len returns the number of live registrations.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	return len(s.ads)
}

func (s *Server) expireLocked() {
	now := s.clock()
	for name, e := range s.ads {
		if now.After(e.expires) {
			delete(s.ads, name)
		}
	}
}

type registerReq struct {
	Ad         *classad.Ad `json:"ad"`
	TTLSeconds int         `json:"ttl_seconds"`
}

func (s *Server) handleRegister(peer string, body json.RawMessage) (any, error) {
	var req registerReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Ad == nil {
		return nil, fmt.Errorf("mds: register without ad")
	}
	name := req.Ad.EvalString("Name", "")
	if name == "" {
		return nil, fmt.Errorf("mds: registered ad must carry a Name attribute")
	}
	ttl := DefaultTTL
	if req.TTLSeconds > 0 {
		ttl = time.Duration(req.TTLSeconds) * time.Second
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	s.ads[name] = &entry{ad: req.Ad, expires: s.clock().Add(ttl), owner: peer}
	return struct{}{}, nil
}

type unregisterReq struct {
	Name string `json:"name"`
}

func (s *Server) handleUnregister(peer string, body json.RawMessage) (any, error) {
	var req unregisterReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.ads[req.Name]; ok {
		// Only the registrant (or an unauthenticated directory) may
		// remove an entry.
		if e.owner != "" && e.owner != peer {
			return nil, fmt.Errorf("mds: %s registered by %s, not %s", req.Name, e.owner, peer)
		}
		delete(s.ads, req.Name)
	}
	return struct{}{}, nil
}

type queryReq struct {
	Constraint string `json:"constraint"` // ClassAd expression; empty = all
}

type queryResp struct {
	Ads []*classad.Ad `json:"ads"`
}

func (s *Server) handleQuery(_ string, body json.RawMessage) (any, error) {
	var req queryReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	var constraint classad.Expr
	if req.Constraint != "" {
		var err error
		constraint, err = classad.ParseExpr(req.Constraint)
		if err != nil {
			return nil, fmt.Errorf("mds: bad constraint: %w", err)
		}
	}
	s.mu.Lock()
	s.expireLocked()
	names := make([]string, 0, len(s.ads))
	for name := range s.ads {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*classad.Ad
	for _, name := range names {
		ad := s.ads[name].ad
		if constraint != nil {
			v := constraint.Eval(&classad.EvalContext{Self: ad})
			if !v.IsTrue() {
				continue
			}
		}
		out = append(out, ad)
	}
	s.mu.Unlock()
	return queryResp{Ads: out}, nil
}

// Client registers with and queries a GIIS.
type Client struct {
	wc *wire.Client
}

// NewClient connects to the GIIS at addr.
func NewClient(addr string, cred *gsi.Credential, clock gsi.Clock) *Client {
	return &Client{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: ServiceName,
		Credential: cred,
		Clock:      clock,
		Timeout:    3 * time.Second,
	})}
}

// Close releases the connection.
func (c *Client) Close() error { return c.wc.Close() }

// Register announces ad for ttl (GRRP). Re-register before expiry to stay
// in the directory.
func (c *Client) Register(ad *classad.Ad, ttl time.Duration) error {
	return c.wc.Call("mds.register", registerReq{Ad: ad, TTLSeconds: int(ttl / time.Second)}, nil)
}

// Unregister withdraws the named registration.
func (c *Client) Unregister(name string) error {
	return c.wc.Call("mds.unregister", unregisterReq{Name: name}, nil)
}

// Query returns all ads matching the constraint expression (GRIP). An empty
// constraint returns everything.
func (c *Client) Query(constraint string) ([]*classad.Ad, error) {
	var resp queryResp
	if err := c.wc.Call("mds.query", queryReq{Constraint: constraint}, &resp); err != nil {
		return nil, err
	}
	return resp.Ads, nil
}

// Ping checks directory liveness.
func (c *Client) Ping() error { return c.wc.Ping("mds.ping") }
