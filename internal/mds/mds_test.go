package mds

import (
	"sync"
	"testing"
	"time"

	"condorg/internal/classad"
	"condorg/internal/gsi"
)

// fakeClock is a mutable clock for soft-state expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func resourceAd(name string, cpus int64, arch string) *classad.Ad {
	ad := classad.New()
	ad.SetString("Name", name)
	ad.SetString("MyType", "Resource")
	ad.SetInt("Cpus", cpus)
	ad.SetString("Arch", arch)
	return ad
}

func newGIIS(t *testing.T, clock gsi.Clock) (*Server, *Client) {
	t.Helper()
	s, err := NewServer(ServerOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := NewClient(s.Addr(), nil, clock)
	t.Cleanup(func() { c.Close() })
	return s, c
}

func TestRegisterAndQueryAll(t *testing.T) {
	_, c := newGIIS(t, nil)
	if err := c.Register(resourceAd("wisc-pool", 300, "x86_64"), time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(resourceAd("anl-cluster", 64, "x86_64"), time.Minute); err != nil {
		t.Fatal(err)
	}
	ads, err := c.Query("")
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != 2 {
		t.Fatalf("query all = %d ads, want 2", len(ads))
	}
	// Deterministic (sorted) order.
	if ads[0].EvalString("Name", "") != "anl-cluster" {
		t.Fatalf("order[0] = %s", ads[0].EvalString("Name", ""))
	}
}

func TestConstraintQuery(t *testing.T) {
	_, c := newGIIS(t, nil)
	c.Register(resourceAd("big", 1000, "x86_64"), time.Minute)
	c.Register(resourceAd("small", 8, "x86_64"), time.Minute)
	c.Register(resourceAd("sparc", 500, "sparc"), time.Minute)
	ads, err := c.Query(`Cpus > 100 && Arch == "x86_64"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) != 1 || ads[0].EvalString("Name", "") != "big" {
		t.Fatalf("constraint query = %v", names(ads))
	}
	if _, err := c.Query("not a valid ((("); err == nil {
		t.Fatal("bad constraint accepted")
	}
}

func names(ads []*classad.Ad) []string {
	var out []string
	for _, ad := range ads {
		out = append(out, ad.EvalString("Name", ""))
	}
	return out
}

func TestReRegisterReplaces(t *testing.T) {
	s, c := newGIIS(t, nil)
	c.Register(resourceAd("pool", 10, "x86_64"), time.Minute)
	c.Register(resourceAd("pool", 99, "x86_64"), time.Minute)
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1 after re-register", s.Len())
	}
	ads, _ := c.Query("")
	if got := ads[0].EvalInt("Cpus", 0); got != 99 {
		t.Fatalf("Cpus = %d, want replacement value 99", got)
	}
}

func TestSoftStateExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Date(2001, 8, 6, 0, 0, 0, 0, time.UTC)}
	s, c := newGIIS(t, clk.Now)
	c.Register(resourceAd("ephemeral", 4, "x86_64"), 30*time.Second)
	c.Register(resourceAd("longlived", 4, "x86_64"), 10*time.Minute)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	clk.Advance(time.Minute)
	ads, _ := c.Query("")
	if len(ads) != 1 || ads[0].EvalString("Name", "") != "longlived" {
		t.Fatalf("after expiry: %v", names(ads))
	}
	// Renewal resets the clock.
	c.Register(resourceAd("longlived", 4, "x86_64"), 10*time.Minute)
	clk.Advance(9 * time.Minute)
	if s.Len() != 1 {
		t.Fatalf("renewed ad expired prematurely")
	}
}

func TestUnregister(t *testing.T) {
	s, c := newGIIS(t, nil)
	c.Register(resourceAd("gone", 4, "x86_64"), time.Minute)
	if err := c.Unregister("gone"); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("unregister left the ad behind")
	}
	// Unregistering a missing name is not an error (idempotent).
	if err := c.Unregister("gone"); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterRequiresName(t *testing.T) {
	_, c := newGIIS(t, nil)
	ad := classad.New()
	ad.SetInt("Cpus", 4)
	if err := c.Register(ad, time.Minute); err == nil {
		t.Fatal("nameless ad registered")
	}
}

func TestOwnershipEnforcedWhenAuthenticated(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	s, err := NewServer(ServerOptions{Anchor: ca.Certificate()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	alice, _ := ca.IssueUser("/O=Grid/CN=alice", now, time.Hour)
	bob, _ := ca.IssueUser("/O=Grid/CN=bob", now, time.Hour)
	ac := NewClient(s.Addr(), alice, nil)
	defer ac.Close()
	bc := NewClient(s.Addr(), bob, nil)
	defer bc.Close()
	if err := ac.Register(resourceAd("alices-pool", 10, "x86_64"), time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := bc.Unregister("alices-pool"); err == nil {
		t.Fatal("bob unregistered alice's resource")
	}
	if err := ac.Unregister("alices-pool"); err != nil {
		t.Fatal(err)
	}
}

func TestGRRPKeepAliveLoop(t *testing.T) {
	// A resource that renews every tick survives; one that stops renewing
	// falls out — GRRP soft state end to end.
	clk := &fakeClock{now: time.Date(2001, 8, 6, 0, 0, 0, 0, time.UTC)}
	s, c := newGIIS(t, clk.Now)
	for i := 0; i < 5; i++ {
		if err := c.Register(resourceAd("renewer", 1, "x86_64"), 20*time.Second); err != nil {
			t.Fatal(err)
		}
		clk.Advance(15 * time.Second)
	}
	if s.Len() != 1 {
		t.Fatal("renewing resource dropped")
	}
	clk.Advance(30 * time.Second)
	if s.Len() != 0 {
		t.Fatal("silent resource survived past TTL")
	}
}
