package condor

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"condorg/internal/classad"
	"condorg/internal/gsi"
	"condorg/internal/journal"
)

// PoolJobState is a job's state in the Schedd queue.
type PoolJobState int

const (
	PoolIdle PoolJobState = iota
	PoolRunning
	PoolCompleted
	PoolFailed
	PoolHeld
	PoolRemoved
)

func (s PoolJobState) String() string {
	switch s {
	case PoolIdle:
		return "idle"
	case PoolRunning:
		return "running"
	case PoolCompleted:
		return "completed"
	case PoolFailed:
		return "failed"
	case PoolHeld:
		return "held"
	case PoolRemoved:
		return "removed"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s PoolJobState) Terminal() bool {
	return s == PoolCompleted || s == PoolFailed || s == PoolRemoved
}

// PoolJob is a queue entry.
type PoolJob struct {
	ID        string       `json:"id"`
	Ad        *classad.Ad  `json:"ad"`
	State     PoolJobState `json:"state"`
	Err       string       `json:"err,omitempty"`
	Stdout    []byte       `json:"stdout,omitempty"`
	Ckpt      []byte       `json:"ckpt,omitempty"`
	Evictions int          `json:"evictions"`
	Machine   string       `json:"machine,omitempty"` // where it ran last
}

// Schedd is the persistent job queue plus Shadow factory of the user's
// personal pool. Its queue survives restarts via a journal store, mirroring
// "the job status is stored persistently" (§4.1).
type Schedd struct {
	cfg   ScheddConfig
	store *journal.Store

	mu      sync.Mutex
	jobs    map[string]*PoolJob
	shadows map[string]*Shadow
	serial  int
	closed  bool
	wg      sync.WaitGroup
}

// ScheddConfig configures a Schedd.
type ScheddConfig struct {
	// Name identifies the submitter.
	Name string
	// SpoolDir holds per-job shadow sandboxes and the persistent queue.
	SpoolDir string
	// Credential authenticates shadows to startds.
	Credential *gsi.Credential
	Anchor     *gsi.Certificate
	Clock      gsi.Clock
}

// NewSchedd opens (or recovers) a schedd.
func NewSchedd(cfg ScheddConfig) (*Schedd, error) {
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	store, err := journal.OpenStore(filepath.Join(cfg.SpoolDir, "queue"))
	if err != nil {
		return nil, err
	}
	s := &Schedd{cfg: cfg, store: store, jobs: make(map[string]*PoolJob), shadows: make(map[string]*Shadow)}
	err = store.ForEach(func(key string, raw json.RawMessage) error {
		var job PoolJob
		if err := json.Unmarshal(raw, &job); err != nil {
			return err
		}
		if job.State == PoolRunning {
			// Running at crash time: the shadow died with us, so the
			// job goes back to Idle and reruns from its checkpoint.
			job.State = PoolIdle
			job.Evictions++
		}
		s.jobs[job.ID] = &job
		if n := parseSerial(job.ID); n > s.serial {
			s.serial = n
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Persist any recovery transitions.
	for _, job := range s.jobs {
		s.persist(job)
	}
	return s, nil
}

func parseSerial(id string) int {
	var n int
	if _, err := fmt.Sscanf(id[lastDot(id)+1:], "%d", &n); err != nil {
		return 0
	}
	return n
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// Name returns the submitter name.
func (s *Schedd) Name() string { return s.cfg.Name }

func (s *Schedd) persist(job *PoolJob) {
	_ = s.store.Put(job.ID, job)
}

// Submit enqueues a job ad and returns the job ID.
func (s *Schedd) Submit(ad *classad.Ad) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("condor: schedd closed")
	}
	s.serial++
	id := fmt.Sprintf("%s.%d", s.cfg.Name, s.serial)
	job := &PoolJob{ID: id, Ad: ad.Clone(), State: PoolIdle}
	s.jobs[id] = job
	s.persist(job)
	return id, nil
}

// Job returns a snapshot of the job record.
func (s *Schedd) Job(id string) (PoolJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return PoolJob{}, fmt.Errorf("condor: no such job %q", id)
	}
	return *job, nil
}

// Jobs returns all job snapshots sorted by ID.
func (s *Schedd) Jobs() []PoolJob {
	s.mu.Lock()
	out := make([]PoolJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IdleJobs returns the IDs of idle jobs in submission order.
func (s *Schedd) IdleJobs() []string {
	var out []string
	for _, j := range s.Jobs() {
		if j.State == PoolIdle {
			out = append(out, j.ID)
		}
	}
	return out
}

// Counts returns (idle, running, done) totals for pool monitoring.
func (s *Schedd) Counts() (idle, running, done int) {
	for _, j := range s.Jobs() {
		switch j.State {
		case PoolIdle:
			idle++
		case PoolRunning:
			running++
		case PoolCompleted, PoolFailed, PoolRemoved:
			done++
		}
	}
	return
}

// SubmitterAd is the ad a schedd advertises to the collector.
func (s *Schedd) SubmitterAd() *classad.Ad {
	idle, running, _ := s.Counts()
	ad := classad.New()
	ad.SetString("MyType", "Submitter")
	ad.SetString("Name", s.cfg.Name)
	ad.SetInt("IdleJobs", int64(idle))
	ad.SetInt("RunningJobs", int64(running))
	return ad
}

// Remove cancels a job. A running job's slot is vacated.
func (s *Schedd) Remove(id string) error {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("condor: no such job %q", id)
	}
	if job.State.Terminal() {
		s.mu.Unlock()
		return nil
	}
	machine := job.Machine
	wasRunning := job.State == PoolRunning
	job.State = PoolRemoved
	s.persist(job)
	s.mu.Unlock()
	if wasRunning && machine != "" {
		sc := NewStartdClient(machine, s.cfg.Credential, s.cfg.Clock)
		defer sc.Close()
		sc.Vacate()
	}
	return nil
}

// RunOn launches the job on a matched machine: spawn the Shadow, claim the
// slot, and watch for completion. A claim race (the slot got taken) leaves
// the job Idle and returns an error for the Negotiator to note.
func (s *Schedd) RunOn(jobID string, machineAd *classad.Ad) error {
	startdAddr := machineAd.EvalString("StartdAddr", "")
	if startdAddr == "" {
		return fmt.Errorf("condor: machine ad lacks StartdAddr")
	}
	s.mu.Lock()
	job, ok := s.jobs[jobID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("condor: no such job %q", jobID)
	}
	if job.State != PoolIdle {
		s.mu.Unlock()
		return fmt.Errorf("condor: job %s is %v, not idle", jobID, job.State)
	}
	ckpt := job.Ckpt
	ad := job.Ad
	s.mu.Unlock()

	sandbox := filepath.Join(s.cfg.SpoolDir, "sandbox", jobID)
	shadow, err := NewShadow(jobID, sandbox, ckpt, ShadowOptions{
		Anchor: s.cfg.Anchor,
		Clock:  s.cfg.Clock,
	})
	if err != nil {
		return err
	}
	sc := NewStartdClient(startdAddr, s.cfg.Credential, s.cfg.Clock)
	if err := sc.Run(jobID, ad, shadow.Addr()); err != nil {
		sc.Close()
		shadow.Close()
		return err
	}
	sc.Close()

	s.mu.Lock()
	job.State = PoolRunning
	job.Machine = startdAddr
	s.shadows[jobID] = shadow
	s.persist(job)
	s.mu.Unlock()

	s.wg.Add(1)
	go s.watchShadow(job, shadow)
	return nil
}

// watchShadow consumes the shadow's completion report and updates the
// queue: done, failed, or (on eviction) back to idle with the checkpoint
// retained for the next match — migration.
func (s *Schedd) watchShadow(job *PoolJob, shadow *Shadow) {
	defer s.wg.Done()
	res := <-shadow.Done()
	ckpt, hasCkpt := shadow.Checkpoint()
	shadow.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.shadows, job.ID)
	if job.State == PoolRemoved {
		return
	}
	if hasCkpt {
		job.Ckpt = ckpt
	}
	switch {
	case res.Evicted:
		job.State = PoolIdle
		job.Evictions++
	case res.Err != "":
		job.State = PoolFailed
		job.Err = res.Err
		job.Stdout = res.Stdout
	default:
		job.State = PoolCompleted
		job.Stdout = res.Stdout
	}
	s.persist(job)
}

// WaitAll blocks until every job in the queue is terminal or ctx expires.
func (s *Schedd) WaitAll(ctx context.Context) error {
	for {
		allDone := true
		for _, j := range s.Jobs() {
			if !j.State.Terminal() {
				allDone = false
				break
			}
		}
		if allDone {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close shuts the schedd down, closing shadows and the queue store.
func (s *Schedd) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	shadows := make([]*Shadow, 0, len(s.shadows))
	for _, sh := range s.shadows {
		shadows = append(shadows, sh)
	}
	s.mu.Unlock()
	for _, sh := range shadows {
		// Unblock watchers with an eviction report, then close.
		select {
		case sh.done <- ShadowResult{Evicted: true}:
		default:
		}
	}
	s.wg.Wait()
	for _, sh := range shadows {
		sh.Close()
	}
	s.store.Close()
}

// Negotiator runs the matchmaking cycle of the personal pool: pull machine
// ads from the Collector, walk each schedd's idle jobs, and place the best
// mutual matches (§4.4, via the framework of [25]).
type Negotiator struct {
	coll    *CollectorClient
	schedds []*Schedd

	mu      sync.Mutex
	stop    chan struct{}
	stopped bool
	matches int
	wg      sync.WaitGroup
}

// NewNegotiator builds a negotiator over one collector and a set of local
// schedds.
func NewNegotiator(collectorAddr string, cred *gsi.Credential, clock gsi.Clock, schedds ...*Schedd) *Negotiator {
	return &Negotiator{
		coll:    NewCollectorClient(collectorAddr, cred, clock),
		schedds: schedds,
	}
}

// Matches reports how many placements the negotiator has made.
func (n *Negotiator) Matches() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.matches
}

// Cycle performs one negotiation round and returns the number of
// placements made.
func (n *Negotiator) Cycle() (int, error) {
	machines, err := n.coll.Query("Machine", `State == "Unclaimed"`)
	if err != nil {
		return 0, err
	}
	// Available machines are consumed as they are claimed this cycle.
	avail := append([]*classad.Ad(nil), machines...)
	placed := 0
	// Round-robin across schedds for fairness.
	type pending struct {
		schedd *Schedd
		jobs   []string
	}
	var queues []pending
	for _, sd := range n.schedds {
		if ids := sd.IdleJobs(); len(ids) > 0 {
			queues = append(queues, pending{sd, ids})
		}
	}
	remaining := func(qs []pending) int {
		total := 0
		for _, q := range qs {
			total += len(q.jobs)
		}
		return total
	}
	for len(queues) > 0 && len(avail) > 0 {
		before := remaining(queues)
		next := queues[:0]
		for _, q := range queues {
			if len(avail) == 0 {
				// Keep the unexamined jobs so the progress check sees
				// them, then stop this cycle.
				next = append(next, q)
				continue
			}
			jobID := q.jobs[0]
			job, err := q.schedd.Job(jobID)
			if err == nil && job.State == PoolIdle {
				best := -1
				bestRank := 0.0
				for i, m := range avail {
					if m == nil || !classad.Match(job.Ad, m) {
						continue
					}
					r := classad.RankOf(job.Ad, m)
					if best == -1 || r > bestRank {
						best, bestRank = i, r
					}
				}
				if best >= 0 {
					machine := avail[best]
					if err := q.schedd.RunOn(jobID, machine); err == nil {
						placed++
						n.mu.Lock()
						n.matches++
						n.mu.Unlock()
					}
					// Claimed (or claim-raced): drop from this cycle.
					avail = append(avail[:best], avail[best+1:]...)
				}
			}
			if len(q.jobs) > 1 {
				next = append(next, pending{q.schedd, q.jobs[1:]})
			}
		}
		if remaining(next) >= before {
			break // no job consumed: avoid spinning
		}
		queues = next
	}
	return placed, nil
}

// Start runs Cycle on a fixed period until Stop.
func (n *Negotiator) Start(interval time.Duration) {
	n.mu.Lock()
	if n.stop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.stop = stop
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				n.Cycle()
			}
		}
	}()
}

// Stop halts the negotiation loop and releases the collector connection.
func (n *Negotiator) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	if n.stop != nil {
		close(n.stop)
	}
	n.mu.Unlock()
	n.wg.Wait()
	n.coll.Close()
}
