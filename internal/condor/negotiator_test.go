package condor

import (
	"fmt"
	"testing"
	"time"

	"condorg/internal/classad"
)

// TestNegotiatorRespectsRequirementsBothWays: a job whose Requirements no
// machine satisfies is never placed, and a machine whose Requirements the
// job violates never receives it — bilateral matchmaking in the live pool.
func TestNegotiatorRespectsRequirementsBothWays(t *testing.T) {
	p := newPool(t, 2) // memories 256, 512
	deadline := time.Now().Add(2 * time.Second)
	for p.coll.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Job demanding more memory than any slot offers: never matches.
	picky := JobAd("user", "hello")
	picky.SetExpr("Requirements", classad.MustParseExpr("TARGET.Memory >= 100000"))
	pickyID, _ := p.schedd.Submit(picky)

	// Job exceeding every machine's ImageSize requirement: machines
	// refuse it.
	huge := JobAd("user", "hello")
	huge.SetInt("ImageSize", 1<<20)
	hugeID, _ := p.schedd.Submit(huge)

	// A normal job must still flow around the unmatchable ones.
	okID, _ := p.schedd.Submit(JobAd("user", "hello", "x"))

	placed, err := p.neg.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if placed != 1 {
		t.Fatalf("placed %d, want only the matchable job", placed)
	}
	waitPoolState(t, p.schedd, okID, PoolCompleted)
	for _, id := range []string{pickyID, hugeID} {
		j, _ := p.schedd.Job(id)
		if j.State != PoolIdle {
			t.Fatalf("unmatchable job %s reached %v", id, j.State)
		}
	}
}

// TestNegotiatorDrainsBacklogAcrossCycles: more jobs than slots; repeated
// cycles work through the queue without starvation.
func TestNegotiatorDrainsBacklogAcrossCycles(t *testing.T) {
	p := newPool(t, 2)
	for i := 0; i < 10; i++ {
		p.schedd.Submit(JobAd("user", "hello", fmt.Sprint(i)))
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.coll.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	p.neg.Start(10 * time.Millisecond)
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		_, _, done := p.schedd.Counts()
		if done == 10 {
			break
		}
		if time.Now().After(drainDeadline) {
			idle, running, done := p.schedd.Counts()
			t.Fatalf("backlog stuck: idle=%d running=%d done=%d", idle, running, done)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.neg.Matches() < 10 {
		t.Fatalf("negotiator recorded %d matches, want >= 10", p.neg.Matches())
	}
}

// TestShadowIOCounts: the Figure 2 remote-syscall counters.
func TestShadowIOCounts(t *testing.T) {
	sh, err := NewShadow("job", t.TempDir(), nil, ShadowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	io := newShadowIO(sh.Addr(), nil, nil)
	defer io.close()
	if err := io.WriteFile("a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := io.AppendFile("a.txt", []byte(" world")); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadFile("a.txt")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read = %q err=%v", data, err)
	}
	reads, writes := sh.IOCounts()
	if reads != 1 || writes != 2 {
		t.Fatalf("io counts = %d reads, %d writes", reads, writes)
	}
	// Sandbox escape refused.
	if _, err := io.ReadFile("../../etc/passwd"); err == nil {
		t.Fatal("sandbox escape read succeeded")
	}
}
