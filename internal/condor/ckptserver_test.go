package condor

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestCheckpointServerStoreFetchDelete(t *testing.T) {
	s, err := NewCheckpointServer(CkptServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := NewCkptClient(s.Addr(), nil, nil)
	defer c.Close()
	if err := c.Store("job1", []byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("job1", []byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := c.Fetch("job1")
	if err != nil || !ok || string(data) != "state-v2" {
		t.Fatalf("fetch: %q ok=%v err=%v", data, ok, err)
	}
	if _, ok, _ := c.Fetch("ghost"); ok {
		t.Fatal("missing checkpoint reported present")
	}
	if err := c.Delete("job1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Fetch("job1"); ok {
		t.Fatal("deleted checkpoint still present")
	}
	if err := c.Store("", []byte("x")); err == nil {
		t.Fatal("empty job id accepted")
	}
}

func TestLocatorRoundTrip(t *testing.T) {
	loc := makeLocator("127.0.0.1:9999", "schedd.42")
	addr, job, ok := parseLocator(loc)
	if !ok || addr != "127.0.0.1:9999" || job != "schedd.42" {
		t.Fatalf("parse: %q %q %v", addr, job, ok)
	}
	for _, bad := range []string{"raw-checkpoint-bytes", "ckptsrv://", "ckptsrv://hostonly", "ckptsrv://host/"} {
		if _, _, ok := parseLocator([]byte(bad)); ok {
			t.Errorf("parseLocator(%q) should fail", bad)
		}
	}
}

// TestMigrationViaCheckpointServer runs the full §5 path with a site-local
// checkpoint server: the job checkpoints to the server, is evicted,
// re-matches on a second slot, and resumes from the server-held state.
func TestMigrationViaCheckpointServer(t *testing.T) {
	cs, err := NewCheckpointServer(CkptServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	coll, _ := NewCollector(CollectorOptions{})
	defer coll.Close()
	rt := poolRuntime()
	var slots []*Startd
	for i := 0; i < 2; i++ {
		sd, err := NewStartd(StartdConfig{
			Name:              fmt.Sprintf("ckpt-slot%d", i),
			CollectorAddr:     coll.Addr(),
			Runtime:           rt,
			AdvertiseInterval: 10 * time.Millisecond,
			CkptServerAddr:    cs.Addr(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sd.Shutdown("cleanup")
		slots = append(slots, sd)
	}
	schedd, _ := NewSchedd(ScheddConfig{Name: "user", SpoolDir: t.TempDir()})
	defer schedd.Close()
	neg := NewNegotiator(coll.Addr(), nil, nil, schedd)
	defer neg.Stop()

	id, _ := schedd.Submit(JobAd("user", "counter"))
	deadline := time.Now().Add(2 * time.Second)
	for coll.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	neg.Cycle()
	j := waitPoolState(t, schedd, id, PoolRunning)
	time.Sleep(50 * time.Millisecond) // a few checkpoints land at the server
	if cs.Len() == 0 {
		t.Fatal("no checkpoint reached the server")
	}
	// The shadow holds only a small locator, not the state itself.
	sc := NewStartdClient(j.Machine, nil, nil)
	sc.Vacate()
	sc.Close()
	j = waitPoolState(t, schedd, id, PoolIdle)
	if !strings.HasPrefix(string(j.Ckpt), "ckptsrv://") {
		t.Fatalf("shadow-side checkpoint is %q, want a locator", j.Ckpt)
	}
	neg.Start(10 * time.Millisecond)
	j = waitPoolState(t, schedd, id, PoolCompleted)
	if !strings.Contains(string(j.Stdout), "resumed at") {
		t.Fatalf("job restarted from scratch after server-side checkpoint: %q", j.Stdout)
	}
}

// TestMigrationLocatorWithoutLocalServer: the job lands on a slot with no
// checkpoint server configured but carries a locator from its previous
// site; the restore path resolves it remotely.
func TestMigrationLocatorWithoutLocalServer(t *testing.T) {
	cs, _ := NewCheckpointServer(CkptServerOptions{})
	defer cs.Close()
	coll, _ := NewCollector(CollectorOptions{})
	defer coll.Close()
	rt := poolRuntime()
	withServer, err := NewStartd(StartdConfig{
		Name: "has-server", CollectorAddr: coll.Addr(), Runtime: rt,
		AdvertiseInterval: 10 * time.Millisecond, CkptServerAddr: cs.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	schedd, _ := NewSchedd(ScheddConfig{Name: "user", SpoolDir: t.TempDir()})
	defer schedd.Close()
	neg := NewNegotiator(coll.Addr(), nil, nil, schedd)
	defer neg.Stop()
	id, _ := schedd.Submit(JobAd("user", "counter"))
	deadline := time.Now().Add(2 * time.Second)
	for coll.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	neg.Cycle()
	waitPoolState(t, schedd, id, PoolRunning)
	time.Sleep(50 * time.Millisecond)
	withServer.Vacate()
	waitPoolState(t, schedd, id, PoolIdle)
	withServer.Shutdown("gone")

	// Second slot has NO local checkpoint server.
	plain, err := NewStartd(StartdConfig{
		Name: "no-server", CollectorAddr: coll.Addr(), Runtime: rt,
		AdvertiseInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Shutdown("cleanup")
	neg.Start(10 * time.Millisecond)
	j := waitPoolState(t, schedd, id, PoolCompleted)
	if !strings.Contains(string(j.Stdout), "resumed at") {
		t.Fatalf("cross-site locator restore failed: %q", j.Stdout)
	}
}
