package condor

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"condorg/internal/classad"
	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// Collector is the pool's directory: daemons advertise ClassAds; the
// Negotiator and tools query them. Ads are soft state and expire unless
// renewed, which is how the pool notices a vanished GlideIn.
type Collector struct {
	srv   *wire.Server
	clock gsi.Clock
	mu    sync.Mutex
	ads   map[string]*collectorEntry // key: MyType + "/" + Name
}

type collectorEntry struct {
	ad      *classad.Ad
	expires time.Time
}

// CollectorOptions configures a Collector.
type CollectorOptions struct {
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
}

// NewCollector starts a collector on a fresh loopback port.
func NewCollector(opts CollectorOptions) (*Collector, error) {
	if opts.Clock == nil {
		opts.Clock = gsi.WallClock
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		Name:   CollectorService,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	c := &Collector{srv: srv, clock: opts.Clock, ads: make(map[string]*collectorEntry)}
	srv.Handle("collector.advertise", c.handleAdvertise)
	srv.Handle("collector.invalidate", c.handleInvalidate)
	srv.Handle("collector.query", c.handleQuery)
	srv.Handle("collector.ping", func(string, json.RawMessage) (any, error) { return struct{}{}, nil })
	return c, nil
}

// Addr returns host:port.
func (c *Collector) Addr() string { return c.srv.Addr() }

// Close stops the collector.
func (c *Collector) Close() error { return c.srv.Close() }

func adKey(ad *classad.Ad) (string, error) {
	typ := ad.EvalString("MyType", "")
	name := ad.EvalString("Name", "")
	if typ == "" || name == "" {
		return "", fmt.Errorf("condor: advertised ad needs MyType and Name")
	}
	return typ + "/" + name, nil
}

type advertiseReq struct {
	Ad         *classad.Ad `json:"ad"`
	TTLSeconds int         `json:"ttl_seconds"`
}

func (c *Collector) handleAdvertise(_ string, body json.RawMessage) (any, error) {
	var req advertiseReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Ad == nil {
		return nil, fmt.Errorf("condor: advertise without ad")
	}
	key, err := adKey(req.Ad)
	if err != nil {
		return nil, err
	}
	ttl := adTTL
	if req.TTLSeconds > 0 {
		ttl = time.Duration(req.TTLSeconds) * time.Second
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	c.ads[key] = &collectorEntry{ad: req.Ad, expires: c.clock().Add(ttl)}
	return struct{}{}, nil
}

type invalidateReq struct {
	MyType string `json:"my_type"`
	Name   string `json:"name"`
}

func (c *Collector) handleInvalidate(_ string, body json.RawMessage) (any, error) {
	var req invalidateReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.ads, req.MyType+"/"+req.Name)
	return struct{}{}, nil
}

type queryReq struct {
	MyType     string `json:"my_type,omitempty"`
	Constraint string `json:"constraint,omitempty"`
}

type queryResp struct {
	Ads []*classad.Ad `json:"ads"`
}

func (c *Collector) handleQuery(_ string, body json.RawMessage) (any, error) {
	var req queryReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	var constraint classad.Expr
	if req.Constraint != "" {
		var err error
		constraint, err = classad.ParseExpr(req.Constraint)
		if err != nil {
			return nil, fmt.Errorf("condor: bad constraint: %w", err)
		}
	}
	c.mu.Lock()
	c.expireLocked()
	keys := make([]string, 0, len(c.ads))
	for k := range c.ads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []*classad.Ad
	for _, k := range keys {
		ad := c.ads[k].ad
		if req.MyType != "" && ad.EvalString("MyType", "") != req.MyType {
			continue
		}
		if constraint != nil && !constraint.Eval(&classad.EvalContext{Self: ad}).IsTrue() {
			continue
		}
		out = append(out, ad)
	}
	c.mu.Unlock()
	return queryResp{Ads: out}, nil
}

func (c *Collector) expireLocked() {
	now := c.clock()
	for k, e := range c.ads {
		if now.After(e.expires) {
			delete(c.ads, k)
		}
	}
}

// Len returns the number of live ads (for tests and pool monitoring).
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	return len(c.ads)
}

// CollectorClient is the client side of the collector protocol.
type CollectorClient struct {
	wc *wire.Client
}

// NewCollectorClient connects to the collector at addr.
func NewCollectorClient(addr string, cred *gsi.Credential, clock gsi.Clock) *CollectorClient {
	return &CollectorClient{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: CollectorService,
		Credential: cred,
		Clock:      clock,
		Timeout:    2 * time.Second,
	})}
}

// Close releases the connection.
func (c *CollectorClient) Close() error { return c.wc.Close() }

// Advertise publishes ad with a TTL.
func (c *CollectorClient) Advertise(ad *classad.Ad, ttl time.Duration) error {
	return c.wc.Call("collector.advertise", advertiseReq{Ad: ad, TTLSeconds: int(ttl / time.Second)}, nil)
}

// Invalidate withdraws an ad.
func (c *CollectorClient) Invalidate(myType, name string) error {
	return c.wc.Call("collector.invalidate", invalidateReq{MyType: myType, Name: name}, nil)
}

// Query returns ads of myType matching the constraint ("" = all).
func (c *CollectorClient) Query(myType, constraint string) ([]*classad.Ad, error) {
	var resp queryResp
	if err := c.wc.Call("collector.query", queryReq{MyType: myType, Constraint: constraint}, &resp); err != nil {
		return nil, err
	}
	return resp.Ads, nil
}

// Ping checks collector liveness.
func (c *CollectorClient) Ping() error { return c.wc.Ping("collector.ping") }
