package condor

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// CkptService is the wire service name for checkpoint servers.
const CkptService = "condor-ckptserver"

// CheckpointServer stores job checkpoints near the execution site — §5:
// the GlideIn daemon "periodically checkpoints the job to another location
// (e.g., the originating location or a local checkpoint server)". Keeping
// checkpoints at a site-local server avoids shipping them across the wide
// area on every save; only a locator travels back to the Shadow.
type CheckpointServer struct {
	srv *wire.Server
	mu  sync.Mutex
	ckp map[string][]byte
}

// CkptServerOptions configures a checkpoint server.
type CkptServerOptions struct {
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
}

// NewCheckpointServer starts a checkpoint server on a fresh loopback port.
func NewCheckpointServer(opts CkptServerOptions) (*CheckpointServer, error) {
	srv, err := wire.NewServer(wire.ServerConfig{
		Name:   CkptService,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	s := &CheckpointServer{srv: srv, ckp: make(map[string][]byte)}
	srv.Handle("ckpt.store", s.handleStore)
	srv.Handle("ckpt.fetch", s.handleFetch)
	srv.Handle("ckpt.delete", s.handleDelete)
	return s, nil
}

// Addr returns host:port.
func (s *CheckpointServer) Addr() string { return s.srv.Addr() }

// Close stops the server.
func (s *CheckpointServer) Close() error { return s.srv.Close() }

// Len reports stored checkpoints (for tests).
func (s *CheckpointServer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ckp)
}

type ckptReq struct {
	Job  string `json:"job"`
	Data []byte `json:"data,omitempty"`
}

type ckptResp struct {
	Data   []byte `json:"data,omitempty"`
	Exists bool   `json:"exists"`
}

func (s *CheckpointServer) handleStore(_ string, body json.RawMessage) (any, error) {
	var req ckptReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Job == "" {
		return nil, fmt.Errorf("condor: checkpoint store without job id")
	}
	s.mu.Lock()
	s.ckp[req.Job] = append([]byte(nil), req.Data...)
	s.mu.Unlock()
	return struct{}{}, nil
}

func (s *CheckpointServer) handleFetch(_ string, body json.RawMessage) (any, error) {
	var req ckptReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	data, ok := s.ckp[req.Job]
	s.mu.Unlock()
	return ckptResp{Data: data, Exists: ok}, nil
}

func (s *CheckpointServer) handleDelete(_ string, body json.RawMessage) (any, error) {
	var req ckptReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	delete(s.ckp, req.Job)
	s.mu.Unlock()
	return struct{}{}, nil
}

// CkptClient talks to a checkpoint server.
type CkptClient struct {
	wc *wire.Client
}

// NewCkptClient connects to the server at addr.
func NewCkptClient(addr string, cred *gsi.Credential, clock gsi.Clock) *CkptClient {
	return &CkptClient{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: CkptService,
		Credential: cred,
		Clock:      clock,
		Timeout:    2 * time.Second,
	})}
}

// Close releases the connection.
func (c *CkptClient) Close() error { return c.wc.Close() }

// Store saves a checkpoint under the job id.
func (c *CkptClient) Store(job string, data []byte) error {
	return c.wc.Call("ckpt.store", ckptReq{Job: job, Data: data}, nil)
}

// Fetch retrieves the latest checkpoint for job.
func (c *CkptClient) Fetch(job string) ([]byte, bool, error) {
	var resp ckptResp
	if err := c.wc.Call("ckpt.fetch", ckptReq{Job: job}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Data, resp.Exists, nil
}

// Delete removes a job's checkpoint.
func (c *CkptClient) Delete(job string) error {
	return c.wc.Call("ckpt.delete", ckptReq{Job: job}, nil)
}

// Locator is what travels to the Shadow when a site-local checkpoint
// server holds the data: "ckptsrv://<addr>/<job>".
const locatorPrefix = "ckptsrv://"

func makeLocator(addr, job string) []byte {
	return []byte(locatorPrefix + addr + "/" + job)
}

func parseLocator(data []byte) (addr, job string, ok bool) {
	s := string(data)
	if !strings.HasPrefix(s, locatorPrefix) {
		return "", "", false
	}
	rest := s[len(locatorPrefix):]
	i := strings.LastIndexByte(rest, '/')
	if i <= 0 || i == len(rest)-1 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}
