// Package condor implements the intra-domain Condor machinery that Condor-G
// builds on: the Collector (resource directory), Negotiator (matchmaking
// cycle), Schedd (persistent job queue), Startd/Starter (execution slot and
// sandbox), Shadow (submit-side remote-I/O server), and a cooperative
// checkpoint/migration library. Together these are the personal Condor pool
// of Figure 2 that GlideIn daemons join.
//
// All daemons speak the wire protocol, so a Startd started by a GlideIn on
// a "remote" site interacts with the user's Collector and Shadows exactly
// as a local one would.
package condor

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"condorg/internal/classad"
)

// Service names for wire auth contexts.
const (
	CollectorService = "condor-collector"
	StartdService    = "condor-startd"
	ShadowService    = "condor-shadow"
)

// JobContext is the sandboxed view a running Condor job has of the world.
// File access goes through RemoteIO — the paper's "system call trapping
// technologies ... redirect system calls issued by the task back to the
// originating system" — and state persistence goes through the
// Checkpointer.
type JobContext struct {
	// JobAd is the job's ClassAd (arguments and attributes).
	JobAd *classad.Ad
	// Args are the job arguments from the ad.
	Args []string
	// IO performs remote file operations on the submit machine.
	IO RemoteIO
	// Stdout accumulates standard output, shipped to the submit machine
	// at completion (and on checkpoint).
	Stdout io.Writer
	// Ckpt saves and restores job state across evictions/migrations.
	Ckpt *Checkpointer
}

// JobFunc is the body of a Condor job. It must poll ctx for eviction and
// may checkpoint through jc.Ckpt at safe points.
type JobFunc func(ctx context.Context, jc *JobContext) error

// Runtime maps the job ad's Cmd attribute to an executable body, standing
// in for the sandboxed binary.
type Runtime struct {
	mu    sync.RWMutex
	funcs map[string]JobFunc
}

// NewRuntime creates an empty job registry.
func NewRuntime() *Runtime { return &Runtime{funcs: make(map[string]JobFunc)} }

// Register binds a Cmd name to a job body.
func (r *Runtime) Register(name string, fn JobFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Lookup resolves a Cmd name.
func (r *Runtime) Lookup(name string) (JobFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.funcs[name]
	return fn, ok
}

// RemoteIO is the remote-system-call surface. Paths are submit-side.
type RemoteIO interface {
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte) error
	AppendFile(path string, data []byte) error
}

// Checkpointer provides cooperative checkpoint and restart. Save ships
// state to the submit machine (via the Shadow); Restore recovers the last
// saved state after a migration.
type Checkpointer struct {
	save    func(state []byte) error
	restore func() ([]byte, bool, error)
	count   int
	mu      sync.Mutex
}

// Save persists state; the job should call it at consistent points.
func (c *Checkpointer) Save(state []byte) error {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
	return c.save(state)
}

// Restore returns the most recent checkpoint, if any.
func (c *Checkpointer) Restore() ([]byte, bool, error) { return c.restore() }

// Saves reports how many checkpoints this execution took.
func (c *Checkpointer) Saves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// ErrEvicted is returned by job bodies that exit due to eviction; the
// Shadow requeues such jobs rather than failing them.
var ErrEvicted = fmt.Errorf("condor: evicted")

// MachineAd builds the ClassAd a Startd advertises.
func MachineAd(name, arch string, memoryMB int64, addr string) *classad.Ad {
	ad := classad.New()
	ad.SetString("MyType", "Machine")
	ad.SetString("Name", name)
	ad.SetString("Arch", arch)
	ad.SetInt("Memory", memoryMB)
	ad.SetString("StartdAddr", addr)
	ad.SetString("State", "Unclaimed")
	ad.SetExpr("Requirements", classad.MustParseExpr("TARGET.ImageSize <= MY.Memory"))
	return ad
}

// JobAd builds a minimal job ClassAd for cmd with args.
func JobAd(owner, cmd string, args ...string) *classad.Ad {
	ad := classad.New()
	ad.SetString("MyType", "Job")
	ad.SetString("Owner", owner)
	ad.SetString("Cmd", cmd)
	list := make([]classad.Value, len(args))
	for i, a := range args {
		list[i] = classad.Str(a)
	}
	ad.Set("Args", classad.ListOf(list...))
	ad.SetInt("ImageSize", 64)
	ad.SetExpr("Requirements", classad.MustParseExpr("TARGET.Arch == \"x86_64\""))
	ad.SetExpr("Rank", classad.MustParseExpr("TARGET.Memory"))
	return ad
}

// AdArgs extracts the Args list from a job ad.
func AdArgs(ad *classad.Ad) []string {
	v := ad.Eval("Args")
	if v.Kind != classad.ListKind {
		return nil
	}
	out := make([]string, 0, len(v.List))
	for _, e := range v.List {
		if e.Kind == classad.StringKind {
			out = append(out, e.Str)
		}
	}
	return out
}

// adTTL is how long collector entries live without renewal.
const adTTL = 30 * time.Second
