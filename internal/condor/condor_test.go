package condor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"condorg/internal/classad"
)

// poolRuntime registers the job bodies used across the pool tests.
func poolRuntime() *Runtime {
	rt := NewRuntime()
	rt.Register("hello", func(_ context.Context, jc *JobContext) error {
		fmt.Fprintf(jc.Stdout, "hello from %s\n", strings.Join(jc.Args, ","))
		return nil
	})
	rt.Register("io-copy", func(_ context.Context, jc *JobContext) error {
		data, err := jc.IO.ReadFile(jc.Args[0])
		if err != nil {
			return err
		}
		return jc.IO.WriteFile(jc.Args[1], []byte(strings.ToUpper(string(data))))
	})
	rt.Register("crash", func(context.Context, *JobContext) error {
		return errors.New("simulated segfault")
	})
	// counter runs N steps, checkpointing after each; on restart it
	// resumes from the saved step. Used by the migration tests.
	rt.Register("counter", func(ctx context.Context, jc *JobContext) error {
		type state struct {
			Step int `json:"step"`
		}
		var st state
		if data, ok, err := jc.Ckpt.Restore(); err == nil && ok {
			json.Unmarshal(data, &st)
			fmt.Fprintf(jc.Stdout, "resumed at %d\n", st.Step)
		}
		total := 10
		for st.Step < total {
			select {
			case <-ctx.Done():
				return ErrEvicted
			case <-time.After(10 * time.Millisecond):
			}
			st.Step++
			data, _ := json.Marshal(st)
			if err := jc.Ckpt.Save(data); err != nil {
				return err
			}
		}
		fmt.Fprintf(jc.Stdout, "finished %d steps\n", st.Step)
		return nil
	})
	return rt
}

type pool struct {
	coll    *Collector
	schedd  *Schedd
	neg     *Negotiator
	startds []*Startd
	rt      *Runtime
}

func newPool(t *testing.T, slots int) *pool {
	t.Helper()
	coll, err := NewCollector(CollectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coll.Close() })
	rt := poolRuntime()
	p := &pool{coll: coll, rt: rt}
	for i := 0; i < slots; i++ {
		sd, err := NewStartd(StartdConfig{
			Name:              fmt.Sprintf("slot%d", i),
			MemoryMB:          int64(256 * (i + 1)), // distinct memories for rank tests
			CollectorAddr:     coll.Addr(),
			Runtime:           rt,
			AdvertiseInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sd.Shutdown("test cleanup") })
		p.startds = append(p.startds, sd)
	}
	schedd, err := NewSchedd(ScheddConfig{Name: "user", SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(schedd.Close)
	p.schedd = schedd
	p.neg = NewNegotiator(coll.Addr(), nil, nil, schedd)
	t.Cleanup(p.neg.Stop)
	return p
}

// waitPoolState polls a schedd job until it reaches want.
func waitPoolState(t *testing.T, s *Schedd, id string, want PoolJobState) PoolJob {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() && j.State != want {
			t.Fatalf("job %s reached %v (err=%q), want %v", id, j.State, j.Err, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := s.Job(id)
	t.Fatalf("job %s never reached %v (now %v)", id, want, j.State)
	return PoolJob{}
}

func TestCollectorAdvertiseQueryInvalidate(t *testing.T) {
	coll, err := NewCollector(CollectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	cc := NewCollectorClient(coll.Addr(), nil, nil)
	defer cc.Close()
	cc.Advertise(MachineAd("m1", "x86_64", 512, "1.2.3.4:5"), time.Minute)
	cc.Advertise(MachineAd("m2", "sparc", 1024, "1.2.3.4:6"), time.Minute)
	ads, err := cc.Query("Machine", `Arch == "x86_64"`)
	if err != nil || len(ads) != 1 || ads[0].EvalString("Name", "") != "m1" {
		t.Fatalf("query: %d ads err=%v", len(ads), err)
	}
	if err := cc.Invalidate("Machine", "m1"); err != nil {
		t.Fatal(err)
	}
	if coll.Len() != 1 {
		t.Fatalf("len after invalidate = %d", coll.Len())
	}
	if _, err := cc.Query("Machine", "((("); err == nil {
		t.Fatal("bad constraint accepted")
	}
}

func TestPoolRunsJobs(t *testing.T) {
	p := newPool(t, 2)
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := p.schedd.Submit(JobAd("user", "hello", fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	p.neg.Start(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
	defer cancel()
	if err := p.schedd.WaitAll(ctx); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		j, _ := p.schedd.Job(id)
		if j.State != PoolCompleted {
			t.Fatalf("job %s state %v err=%q", id, j.State, j.Err)
		}
		want := fmt.Sprintf("hello from %d\n", i)
		if string(j.Stdout) != want {
			t.Fatalf("stdout = %q, want %q", j.Stdout, want)
		}
	}
}

func TestRemoteSystemCalls(t *testing.T) {
	p := newPool(t, 1)
	// Plant an input file in the job's submit-side sandbox.
	id, _ := p.schedd.Submit(JobAd("user", "io-copy", "in.txt", "out.txt"))
	sandbox := filepath.Join(p.schedd.cfg.SpoolDir, "sandbox", id)
	os.MkdirAll(sandbox, 0o700)
	os.WriteFile(filepath.Join(sandbox, "in.txt"), []byte("grid computing"), 0o600)
	p.neg.Start(10 * time.Millisecond)
	waitPoolState(t, p.schedd, id, PoolCompleted)
	out, err := os.ReadFile(filepath.Join(sandbox, "out.txt"))
	if err != nil || string(out) != "GRID COMPUTING" {
		t.Fatalf("remote write landed %q err=%v", out, err)
	}
}

func TestFailedJobReported(t *testing.T) {
	p := newPool(t, 1)
	id, _ := p.schedd.Submit(JobAd("user", "crash"))
	p.neg.Start(10 * time.Millisecond)
	j := waitPoolState(t, p.schedd, id, PoolFailed)
	if !strings.Contains(j.Err, "segfault") {
		t.Fatalf("err = %q", j.Err)
	}
}

func TestRankPrefersBiggerMachine(t *testing.T) {
	p := newPool(t, 3) // memories 256, 512, 768
	id, _ := p.schedd.Submit(JobAd("user", "hello", "x"))
	// Wait for all slots to advertise.
	deadline := time.Now().Add(2 * time.Second)
	for p.coll.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n, err := p.neg.Cycle(); err != nil || n != 1 {
		t.Fatalf("cycle placed %d err=%v", n, err)
	}
	j := waitPoolState(t, p.schedd, id, PoolCompleted)
	if j.Machine != p.startds[2].Addr() {
		t.Fatalf("placed on %s, want the 768MB slot %s", j.Machine, p.startds[2].Addr())
	}
}

func TestCheckpointMigration(t *testing.T) {
	p := newPool(t, 2)
	id, _ := p.schedd.Submit(JobAd("user", "counter"))
	deadline := time.Now().Add(2 * time.Second)
	for p.coll.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := p.neg.Cycle(); err != nil {
		t.Fatal(err)
	}
	j := waitPoolState(t, p.schedd, id, PoolRunning)
	firstMachine := j.Machine
	// Let it take a few checkpoints, then evict (resource reclaimed).
	time.Sleep(50 * time.Millisecond)
	sc := NewStartdClient(firstMachine, nil, nil)
	if err := sc.Vacate(); err != nil {
		t.Fatal(err)
	}
	sc.Close()
	j = waitPoolState(t, p.schedd, id, PoolIdle)
	if j.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", j.Evictions)
	}
	if len(j.Ckpt) == 0 {
		t.Fatal("no checkpoint survived the eviction")
	}
	// Re-match; the job must RESUME, not restart.
	p.neg.Start(10 * time.Millisecond)
	j = waitPoolState(t, p.schedd, id, PoolCompleted)
	if !strings.Contains(string(j.Stdout), "resumed at") {
		t.Fatalf("job restarted from scratch: stdout = %q", j.Stdout)
	}
	if !strings.Contains(string(j.Stdout), "finished 10 steps") {
		t.Fatalf("job did not finish: %q", j.Stdout)
	}
}

func TestClaimRace(t *testing.T) {
	p := newPool(t, 1)
	id1, _ := p.schedd.Submit(JobAd("user", "counter"))
	id2, _ := p.schedd.Submit(JobAd("user", "counter"))
	deadline := time.Now().Add(2 * time.Second)
	for p.coll.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	machine := p.startds[0].Addr()
	ad := p.startds[0].machineAd()
	if err := p.schedd.RunOn(id1, ad); err != nil {
		t.Fatal(err)
	}
	if err := p.schedd.RunOn(id2, ad); err == nil {
		t.Fatal("second claim on a busy slot succeeded")
	}
	j2, _ := p.schedd.Job(id2)
	if j2.State != PoolIdle {
		t.Fatalf("raced job state = %v, want idle", j2.State)
	}
	_ = machine
}

func TestScheddPersistenceAcrossRestart(t *testing.T) {
	spool := t.TempDir()
	s1, err := NewSchedd(ScheddConfig{Name: "user", SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	idA, _ := s1.Submit(JobAd("user", "hello", "a"))
	idB, _ := s1.Submit(JobAd("user", "hello", "b"))
	// Simulate one running at crash time.
	s1.mu.Lock()
	s1.jobs[idB].State = PoolRunning
	s1.jobs[idB].Ckpt = []byte("state")
	s1.persist(s1.jobs[idB])
	s1.mu.Unlock()
	s1.Close()

	s2, err := NewSchedd(ScheddConfig{Name: "user", SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jA, _ := s2.Job(idA)
	jB, _ := s2.Job(idB)
	if jA.State != PoolIdle {
		t.Fatalf("job A recovered as %v", jA.State)
	}
	if jB.State != PoolIdle || jB.Evictions != 1 || string(jB.Ckpt) != "state" {
		t.Fatalf("running job recovered as %+v", jB)
	}
	// New submissions do not collide with recovered IDs.
	idC, _ := s2.Submit(JobAd("user", "hello", "c"))
	if idC == idA || idC == idB {
		t.Fatalf("serial collision: %s", idC)
	}
}

func TestRemoveVacatesRunningJob(t *testing.T) {
	p := newPool(t, 1)
	id, _ := p.schedd.Submit(JobAd("user", "counter"))
	deadline := time.Now().Add(2 * time.Second)
	for p.coll.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	p.neg.Cycle()
	waitPoolState(t, p.schedd, id, PoolRunning)
	if err := p.schedd.Remove(id); err != nil {
		t.Fatal(err)
	}
	j, _ := p.schedd.Job(id)
	if j.State != PoolRemoved {
		t.Fatalf("state = %v", j.State)
	}
	// The slot frees up again.
	deadline = time.Now().Add(2 * time.Second)
	for p.startds[0].State() != "Unclaimed" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.startds[0].State(); got != "Unclaimed" {
		t.Fatalf("slot state = %s after remove", got)
	}
}

func TestStartdIdleTimeout(t *testing.T) {
	coll, _ := NewCollector(CollectorOptions{})
	defer coll.Close()
	done := make(chan string, 1)
	sd, err := NewStartd(StartdConfig{
		Name:              "ephemeral",
		CollectorAddr:     coll.Addr(),
		Runtime:           poolRuntime(),
		AdvertiseInterval: 10 * time.Millisecond,
		IdleTimeout:       50 * time.Millisecond,
		OnShutdown:        func(r string) { done <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case reason := <-done:
		if reason != "idle timeout" {
			t.Fatalf("shutdown reason = %q", reason)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("idle startd never shut down (runaway daemon)")
	}
	if coll.Len() != 0 {
		t.Fatal("shutdown daemon left its ad in the collector")
	}
	_ = sd
}

func TestStartdLeaseExpiry(t *testing.T) {
	coll, _ := NewCollector(CollectorOptions{})
	defer coll.Close()
	done := make(chan string, 1)
	_, err := NewStartd(StartdConfig{
		Name:              "leased",
		CollectorAddr:     coll.Addr(),
		Runtime:           poolRuntime(),
		AdvertiseInterval: 10 * time.Millisecond,
		Lease:             60 * time.Millisecond,
		OnShutdown:        func(r string) { done <- r },
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case reason := <-done:
		if reason != "lease expired" {
			t.Fatalf("shutdown reason = %q", reason)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("leased startd outlived its allocation")
	}
}

func TestCollectorSoftStateDropsDeadStartd(t *testing.T) {
	p := newPool(t, 1)
	deadline := time.Now().Add(2 * time.Second)
	for p.coll.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// A hard kill (no invalidation) leaves the ad to expire via TTL.
	p.startds[0].srv.Close() // kill without graceful shutdown
	// Re-advertising stops happening once Shutdown is called below with
	// the server dead; instead verify invalidation on graceful path:
	p.startds[0].Shutdown("killed")
	if p.coll.Len() != 0 {
		t.Fatalf("collector still lists %d ads", p.coll.Len())
	}
}

func TestNegotiatorFairShareAcrossSchedds(t *testing.T) {
	coll, _ := NewCollector(CollectorOptions{})
	defer coll.Close()
	rt := poolRuntime()
	var slots []*Startd
	for i := 0; i < 2; i++ {
		sd, err := NewStartd(StartdConfig{
			Name: fmt.Sprintf("s%d", i), CollectorAddr: coll.Addr(),
			Runtime: rt, AdvertiseInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sd.Shutdown("cleanup")
		slots = append(slots, sd)
	}
	alice, _ := NewSchedd(ScheddConfig{Name: "alice", SpoolDir: t.TempDir()})
	defer alice.Close()
	bob, _ := NewSchedd(ScheddConfig{Name: "bob", SpoolDir: t.TempDir()})
	defer bob.Close()
	for i := 0; i < 3; i++ {
		alice.Submit(JobAd("alice", "counter"))
		bob.Submit(JobAd("bob", "counter"))
	}
	neg := NewNegotiator(coll.Addr(), nil, nil, alice, bob)
	defer neg.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for coll.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	placed, err := neg.Cycle()
	if err != nil || placed != 2 {
		t.Fatalf("placed %d err=%v, want 2", placed, err)
	}
	// With two slots and round-robin, each submitter got one.
	_, aRunning, _ := alice.Counts()
	_, bRunning, _ := bob.Counts()
	if aRunning != 1 || bRunning != 1 {
		t.Fatalf("running: alice=%d bob=%d, want 1 each", aRunning, bRunning)
	}
}

func TestSubmitterAd(t *testing.T) {
	s, _ := NewSchedd(ScheddConfig{Name: "user", SpoolDir: t.TempDir()})
	defer s.Close()
	s.Submit(JobAd("user", "hello"))
	s.Submit(JobAd("user", "hello"))
	ad := s.SubmitterAd()
	if ad.EvalInt("IdleJobs", -1) != 2 || ad.EvalString("Name", "") != "user" {
		t.Fatalf("submitter ad: %s", ad)
	}
}

func TestJobAdHelpers(t *testing.T) {
	ad := JobAd("u", "prog", "a", "b")
	if got := AdArgs(ad); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("AdArgs = %v", got)
	}
	if AdArgs(classad.New()) != nil {
		t.Fatal("AdArgs on empty ad should be nil")
	}
}
