package condor

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// Shadow is the submit-side agent for one running job (Figure 2's "Condor
// Shadow Process for Job X"). It serves the job's redirected system calls,
// stores checkpoints on the originating machine, and receives the
// completion report from the remote Starter.
type Shadow struct {
	srv     *wire.Server
	jobID   string
	sandbox string // submit-side directory the job's remote I/O resolves in

	mu       sync.Mutex
	ckpt     []byte
	hasCkpt  bool
	done     chan ShadowResult
	finished bool
	ioReads  int
	ioWrites int
}

// ShadowResult is the Starter's completion report.
type ShadowResult struct {
	JobID   string `json:"job_id"`
	Err     string `json:"err,omitempty"`
	Evicted bool   `json:"evicted"`
	Stdout  []byte `json:"stdout,omitempty"`
}

// ShadowOptions configures a Shadow.
type ShadowOptions struct {
	Anchor *gsi.Certificate
	Clock  gsi.Clock
	Faults *wire.Faults
}

// NewShadow starts a shadow for jobID whose remote I/O is rooted at
// sandbox. Pass initial checkpoint state when resuming a migrated job.
func NewShadow(jobID, sandbox string, initialCkpt []byte, opts ShadowOptions) (*Shadow, error) {
	if err := os.MkdirAll(sandbox, 0o700); err != nil {
		return nil, err
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		Name:   ShadowService,
		Anchor: opts.Anchor,
		Clock:  opts.Clock,
		Faults: opts.Faults,
	})
	if err != nil {
		return nil, err
	}
	sh := &Shadow{
		srv:     srv,
		jobID:   jobID,
		sandbox: sandbox,
		ckpt:    initialCkpt,
		hasCkpt: initialCkpt != nil,
		done:    make(chan ShadowResult, 1),
	}
	srv.Handle("shadow.ping", func(string, json.RawMessage) (any, error) { return struct{}{}, nil })
	srv.Handle("shadow.read", sh.handleRead)
	srv.Handle("shadow.write", sh.handleWrite)
	srv.Handle("shadow.append", sh.handleAppend)
	srv.Handle("shadow.ckpt.save", sh.handleCkptSave)
	srv.Handle("shadow.ckpt.get", sh.handleCkptGet)
	srv.Handle("shadow.complete", sh.handleComplete)
	return sh, nil
}

// Addr returns the shadow's contact address.
func (s *Shadow) Addr() string { return s.srv.Addr() }

// Done yields the completion report exactly once.
func (s *Shadow) Done() <-chan ShadowResult { return s.done }

// Checkpoint returns the latest checkpoint bytes, if any.
func (s *Shadow) Checkpoint() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt, s.hasCkpt
}

// IOCounts reports how many remote reads and writes the job issued — the
// remote-system-call traffic of the Figure 2 experiment.
func (s *Shadow) IOCounts() (reads, writes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ioReads, s.ioWrites
}

// Close stops the shadow's server.
func (s *Shadow) Close() error { return s.srv.Close() }

func (s *Shadow) resolve(p string) (string, error) {
	clean := filepath.Clean("/" + p)
	if strings.Contains(clean, "..") {
		return "", fmt.Errorf("shadow: path escapes sandbox: %q", p)
	}
	return filepath.Join(s.sandbox, clean), nil
}

type ioReq struct {
	Path string `json:"path"`
	Data []byte `json:"data,omitempty"`
}

type ioResp struct {
	Data []byte `json:"data,omitempty"`
}

func (s *Shadow) handleRead(_ string, body json.RawMessage) (any, error) {
	var req ioReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ioReads++
	s.mu.Unlock()
	return ioResp{Data: data}, nil
}

func (s *Shadow) handleWrite(_ string, body json.RawMessage) (any, error) {
	var req ioReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, req.Data, 0o600); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ioWrites++
	s.mu.Unlock()
	return struct{}{}, nil
}

func (s *Shadow) handleAppend(_ string, body json.RawMessage) (any, error) {
	var req ioReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Write(req.Data); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ioWrites++
	s.mu.Unlock()
	return struct{}{}, nil
}

type ckptSaveReq struct {
	Data []byte `json:"data"`
}

func (s *Shadow) handleCkptSave(_ string, body json.RawMessage) (any, error) {
	var req ckptSaveReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ckpt = append([]byte(nil), req.Data...)
	s.hasCkpt = true
	s.mu.Unlock()
	return struct{}{}, nil
}

type ckptGetResp struct {
	Data   []byte `json:"data,omitempty"`
	Exists bool   `json:"exists"`
}

func (s *Shadow) handleCkptGet(_ string, _ json.RawMessage) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ckptGetResp{Data: s.ckpt, Exists: s.hasCkpt}, nil
}

func (s *Shadow) handleComplete(_ string, body json.RawMessage) (any, error) {
	var res ShadowResult
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return struct{}{}, nil // duplicate report (retry); first wins
	}
	s.finished = true
	s.mu.Unlock()
	res.JobID = s.jobID
	s.done <- res
	return struct{}{}, nil
}

// shadowIO is the Starter-side RemoteIO implementation: every call is an
// RPC to the Shadow — a redirected system call.
type shadowIO struct {
	wc *wire.Client
}

func newShadowIO(addr string, cred *gsi.Credential, clock gsi.Clock) *shadowIO {
	return &shadowIO{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: ShadowService,
		Credential: cred,
		Clock:      clock,
		Timeout:    2 * time.Second,
	})}
}

func (io *shadowIO) ReadFile(path string) ([]byte, error) {
	var resp ioResp
	if err := io.wc.Call("shadow.read", ioReq{Path: path}, &resp); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

func (io *shadowIO) WriteFile(path string, data []byte) error {
	return io.wc.Call("shadow.write", ioReq{Path: path, Data: data}, nil)
}

func (io *shadowIO) AppendFile(path string, data []byte) error {
	return io.wc.Call("shadow.append", ioReq{Path: path, Data: data}, nil)
}

func (io *shadowIO) saveCkpt(data []byte) error {
	return io.wc.Call("shadow.ckpt.save", ckptSaveReq{Data: data}, nil)
}

func (io *shadowIO) getCkpt() ([]byte, bool, error) {
	var resp ckptGetResp
	if err := io.wc.Call("shadow.ckpt.get", struct{}{}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Data, resp.Exists, nil
}

func (io *shadowIO) complete(res ShadowResult) error {
	return io.wc.Call("shadow.complete", res, nil)
}

func (io *shadowIO) close() { io.wc.Close() }
