package condor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"condorg/internal/classad"
	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// Startd is one execution slot. It advertises its machine ad to the
// Collector, accepts claims from Shadows, and runs each claimed job in a
// Starter whose file I/O is redirected to the Shadow. A GlideIn is exactly
// this daemon started on a remote site under a lease.
type Startd struct {
	cfg  StartdConfig
	srv  *wire.Server
	coll *CollectorClient

	mu        sync.Mutex
	state     string // "Unclaimed", "Claimed"
	currentID string
	cancelRun context.CancelFunc
	closed    bool
	lastWork  time.Time
	jobsRun   int
	stopAdv   chan struct{}
	advWG     sync.WaitGroup
	onIdle    func()
}

// StartdConfig configures a slot.
type StartdConfig struct {
	// Name uniquely identifies the slot in the pool.
	Name string
	// Arch and MemoryMB populate the machine ad.
	Arch     string
	MemoryMB int64
	// CollectorAddr is the user pool's collector.
	CollectorAddr string
	// Runtime resolves job Cmd names.
	Runtime *Runtime
	// Credential authenticates the daemon to collector and shadows.
	Credential *gsi.Credential
	Anchor     *gsi.Certificate
	Clock      gsi.Clock
	// AdvertiseInterval is the ad renewal period (default 1s).
	AdvertiseInterval time.Duration
	// AdTTL is the advertised lifetime (default 30s).
	AdTTL time.Duration
	// CkptServerAddr, when set, stores job checkpoints at a site-local
	// checkpoint server (§5); only a small locator travels to the
	// Shadow. Empty means checkpoints go to the originating machine.
	CkptServerAddr string
	// IdleTimeout, when positive, shuts the daemon down after that long
	// without work — the paper's guard against runaway GlideIn daemons.
	IdleTimeout time.Duration
	// Lease, when positive, shuts the daemon down unconditionally after
	// that long — the remote allocation expiring.
	Lease time.Duration
	// OnShutdown is called once when the daemon exits for any reason.
	OnShutdown func(reason string)
	// CustomAd decorates the machine ad (e.g. GlideIn site labels).
	CustomAd func(*classad.Ad)
}

// NewStartd starts the slot daemon: it listens, advertises, and waits for
// claims.
func NewStartd(cfg StartdConfig) (*Startd, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("condor: startd needs a runtime")
	}
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	if cfg.AdvertiseInterval == 0 {
		cfg.AdvertiseInterval = time.Second
	}
	if cfg.AdTTL == 0 {
		cfg.AdTTL = adTTL
	}
	if cfg.Arch == "" {
		cfg.Arch = "x86_64"
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 512
	}
	srv, err := wire.NewServer(wire.ServerConfig{
		Name:   StartdService,
		Anchor: cfg.Anchor,
		Clock:  cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	sd := &Startd{
		cfg:      cfg,
		srv:      srv,
		coll:     NewCollectorClient(cfg.CollectorAddr, cfg.Credential, cfg.Clock),
		state:    "Unclaimed",
		lastWork: time.Now(),
		stopAdv:  make(chan struct{}),
	}
	srv.Handle("startd.ping", func(string, json.RawMessage) (any, error) { return struct{}{}, nil })
	srv.Handle("startd.run", sd.handleRun)
	srv.Handle("startd.vacate", sd.handleVacate)
	sd.advWG.Add(1)
	go sd.advertiseLoop()
	return sd, nil
}

// Addr returns the slot's contact address.
func (s *Startd) Addr() string { return s.srv.Addr() }

// Name returns the slot name.
func (s *Startd) Name() string { return s.cfg.Name }

// State returns the slot state ("Unclaimed"/"Claimed").
func (s *Startd) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// JobsRun reports how many jobs this slot has executed.
func (s *Startd) JobsRun() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobsRun
}

func (s *Startd) machineAd() *classad.Ad {
	s.mu.Lock()
	state := s.state
	s.mu.Unlock()
	ad := MachineAd(s.cfg.Name, s.cfg.Arch, s.cfg.MemoryMB, s.srv.Addr())
	ad.SetString("State", state)
	if s.cfg.CustomAd != nil {
		s.cfg.CustomAd(ad)
	}
	return ad
}

func (s *Startd) advertiseLoop() {
	defer s.advWG.Done()
	start := time.Now()
	ticker := time.NewTicker(s.cfg.AdvertiseInterval)
	defer ticker.Stop()
	s.coll.Advertise(s.machineAd(), s.cfg.AdTTL)
	for {
		select {
		case <-s.stopAdv:
			return
		case <-ticker.C:
			if s.cfg.Lease > 0 && time.Since(start) >= s.cfg.Lease {
				go s.Shutdown("lease expired")
				return
			}
			s.mu.Lock()
			idleFor := time.Since(s.lastWork)
			busy := s.state == "Claimed"
			s.mu.Unlock()
			if !busy && s.cfg.IdleTimeout > 0 && idleFor >= s.cfg.IdleTimeout {
				go s.Shutdown("idle timeout")
				return
			}
			s.coll.Advertise(s.machineAd(), s.cfg.AdTTL)
		}
	}
}

type runReq struct {
	JobID      string      `json:"job_id"`
	JobAd      *classad.Ad `json:"job_ad"`
	ShadowAddr string      `json:"shadow_addr"`
}

// handleRun claims the slot and activates the job in a Starter.
func (s *Startd) handleRun(_ string, body json.RawMessage) (any, error) {
	var req runReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.JobAd == nil {
		return nil, fmt.Errorf("condor: run without job ad")
	}
	machine := s.machineAd()
	if !classad.Match(req.JobAd, machine) {
		return nil, fmt.Errorf("condor: job %s does not match slot %s", req.JobID, s.cfg.Name)
	}
	cmd := req.JobAd.EvalString("Cmd", "")
	fn, ok := s.cfg.Runtime.Lookup(cmd)
	if !ok {
		return nil, fmt.Errorf("condor: no such program %q on slot %s", cmd, s.cfg.Name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("condor: slot %s is shut down", s.cfg.Name)
	}
	if s.state != "Unclaimed" {
		cur := s.currentID
		s.mu.Unlock()
		return nil, fmt.Errorf("condor: slot %s already claimed by %s", s.cfg.Name, cur)
	}
	s.state = "Claimed"
	s.currentID = req.JobID
	ctx, cancel := context.WithCancel(context.Background())
	s.cancelRun = cancel
	s.mu.Unlock()
	s.coll.Advertise(s.machineAd(), s.cfg.AdTTL)
	go s.starter(ctx, req, fn)
	return struct{}{}, nil
}

// starter runs the job body with redirected I/O and reports completion to
// the Shadow — Figure 2's Starter/sandbox.
func (s *Startd) starter(ctx context.Context, req runReq, fn JobFunc) {
	sio := newShadowIO(req.ShadowAddr, s.cfg.Credential, s.cfg.Clock)
	defer sio.close()
	var stdout bytes.Buffer
	save, restore := sio.saveCkpt, sio.getCkpt
	if s.cfg.CkptServerAddr != "" {
		// Checkpoint to the site-local server; hand the Shadow only a
		// locator. Restore resolves locators back through the server,
		// and falls through to raw Shadow data for jobs that last
		// checkpointed without a server.
		cc := NewCkptClient(s.cfg.CkptServerAddr, s.cfg.Credential, s.cfg.Clock)
		defer cc.Close()
		save = func(data []byte) error {
			if err := cc.Store(req.JobID, data); err != nil {
				return err
			}
			return sio.saveCkpt(makeLocator(s.cfg.CkptServerAddr, req.JobID))
		}
		restore = func() ([]byte, bool, error) {
			data, ok, err := sio.getCkpt()
			if err != nil || !ok {
				return data, ok, err
			}
			if addr, job, isLoc := parseLocator(data); isLoc {
				rc := NewCkptClient(addr, s.cfg.Credential, s.cfg.Clock)
				defer rc.Close()
				return rc.Fetch(job)
			}
			return data, ok, nil
		}
	} else {
		// Even without a local server, a migrated-in job may carry a
		// locator from a previous site: resolve it.
		restore = func() ([]byte, bool, error) {
			data, ok, err := sio.getCkpt()
			if err != nil || !ok {
				return data, ok, err
			}
			if addr, job, isLoc := parseLocator(data); isLoc {
				rc := NewCkptClient(addr, s.cfg.Credential, s.cfg.Clock)
				defer rc.Close()
				return rc.Fetch(job)
			}
			return data, ok, nil
		}
	}
	jc := &JobContext{
		JobAd:  req.JobAd,
		Args:   AdArgs(req.JobAd),
		IO:     sio,
		Stdout: &stdout,
		Ckpt: &Checkpointer{
			save:    save,
			restore: restore,
		},
	}
	err := fn(ctx, jc)
	evicted := err == ErrEvicted || (err != nil && ctx.Err() != nil)
	res := ShadowResult{JobID: req.JobID, Evicted: evicted, Stdout: stdout.Bytes()}
	if err != nil && !evicted {
		res.Err = err.Error()
	}
	// Report completion; retry briefly since the shadow may be mid-restart.
	for attempt := 0; attempt < 3; attempt++ {
		if sio.complete(res) == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	s.mu.Lock()
	s.state = "Unclaimed"
	s.currentID = ""
	s.cancelRun = nil
	s.lastWork = time.Now()
	s.jobsRun++
	closed := s.closed
	s.mu.Unlock()
	if !closed {
		s.coll.Advertise(s.machineAd(), s.cfg.AdTTL)
	}
}

// handleVacate evicts the current job (resource reclaimed or allocation
// expiring). The job checkpoints cooperatively and is requeued by its
// Shadow.
func (s *Startd) handleVacate(_ string, _ json.RawMessage) (any, error) {
	s.mu.Lock()
	cancel := s.cancelRun
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return struct{}{}, nil
}

// Vacate evicts locally (used by lease expiry and tests).
func (s *Startd) Vacate() {
	s.handleVacate("", nil)
}

// Shutdown stops the daemon gracefully: evict any job, withdraw the ad,
// stop serving.
func (s *Startd) Shutdown(reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	cancel := s.cancelRun
	s.mu.Unlock()
	close(s.stopAdv)
	if cancel != nil {
		cancel()
	}
	// Stop the advertise loop BEFORE invalidating, or an in-flight
	// re-advertise can land after the invalidation and resurrect the ad.
	s.advWG.Wait()
	s.coll.Invalidate("Machine", s.cfg.Name)
	s.srv.Close()
	s.coll.Close()
	if s.cfg.OnShutdown != nil {
		s.cfg.OnShutdown(reason)
	}
}

// StartdClient lets Shadows (and the pool tooling) talk to a slot.
type StartdClient struct {
	wc *wire.Client
}

// NewStartdClient connects to a slot at addr.
func NewStartdClient(addr string, cred *gsi.Credential, clock gsi.Clock) *StartdClient {
	return &StartdClient{wc: wire.Dial(addr, wire.ClientConfig{
		ServerName: StartdService,
		Credential: cred,
		Clock:      clock,
		Timeout:    2 * time.Second,
	})}
}

// Close releases the connection.
func (c *StartdClient) Close() error { return c.wc.Close() }

// Run claims the slot and starts the job.
func (c *StartdClient) Run(jobID string, jobAd *classad.Ad, shadowAddr string) error {
	return c.wc.Call("startd.run", runReq{JobID: jobID, JobAd: jobAd, ShadowAddr: shadowAddr}, nil)
}

// Vacate evicts the running job.
func (c *StartdClient) Vacate() error {
	return c.wc.Call("startd.vacate", struct{}{}, nil)
}

// Ping probes the slot.
func (c *StartdClient) Ping() error { return c.wc.Ping("startd.ping") }
