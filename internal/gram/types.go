// Package gram implements the Grid Resource Allocation and Management
// protocol of §3.2, including the two revisions the paper contributed
// toward GRAM-2: two-phase commit for exactly-once execution semantics and
// restartable JobManagers for resource-side fault tolerance.
//
// A site runs one Gatekeeper (authentication, authorization, JobManager
// factory). Each committed job gets a JobManager that stages files through
// GASS, submits to the site's local resource manager, relays status
// callbacks to the submitting client, and streams stdout/stderr back.
package gram

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"condorg/internal/faultclass"
)

// JobState is the GRAM-visible state of a job.
type JobState int

const (
	// StateUnsubmitted: phase one of the two-phase commit has completed
	// but the commit has not arrived.
	StateUnsubmitted JobState = iota
	// StateStageIn: the JobManager is transferring the executable and
	// stdin from the client's GASS server.
	StateStageIn
	// StatePending: queued in the site's local scheduler.
	StatePending
	// StateActive: running.
	StateActive
	// StateDone: completed successfully.
	StateDone
	// StateFailed: the job or its staging failed.
	StateFailed
)

func (s JobState) String() string {
	switch s {
	case StateUnsubmitted:
		return "unsubmitted"
	case StateStageIn:
		return "stage-in"
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == StateDone || s == StateFailed }

// JobSpec describes a remote computational request ("run program P").
type JobSpec struct {
	// Executable is a GASS URL (gass://host:port/path) from which the
	// site stages the program, or a site-local identifier understood by
	// the site's Runtime when no URL scheme is present.
	Executable string `json:"executable"`
	// Args are program arguments.
	Args []string `json:"args,omitempty"`
	// Stdin is an optional GASS URL staged as standard input.
	Stdin string `json:"stdin,omitempty"`
	// StdoutURL and StderrURL, when set, receive real-time appends of the
	// job's output streams.
	StdoutURL string `json:"stdout_url,omitempty"`
	StderrURL string `json:"stderr_url,omitempty"`
	// Env is the job environment.
	Env map[string]string `json:"env,omitempty"`
	// Cpus requested from the local scheduler (default 1).
	Cpus int `json:"cpus,omitempty"`
	// WallLimit is enforced by the local scheduler (0 = site default).
	WallLimit time.Duration `json:"wall_limit,omitempty"`
	// Estimate is the user's runtime estimate, used by backfill policies.
	Estimate time.Duration `json:"estimate,omitempty"`
	// GassURLFile is the site-relative path of the URL file that tells a
	// running job where the client's GASS server lives (§4.2).
	GassURLFile string `json:"gass_url_file,omitempty"`
	// ExecutableHash is the sha256 (lowercase hex) of the staged executable
	// bytes. When set it keys the site's content-addressed executable
	// cache: a committed job whose hash is already cached skips the GASS
	// pull entirely, and a client may pre-stage the bytes through the
	// stage.check/chunk/commit gatekeeper ops before submitting.
	ExecutableHash string `json:"executable_hash,omitempty"`
}

// JobContact identifies a submitted job: the JobManager's address plus the
// site-assigned job ID. It is the handle the GridManager journals.
type JobContact struct {
	JobManagerAddr string `json:"jobmanager_addr"`
	GatekeeperAddr string `json:"gatekeeper_addr"`
	JobID          string `json:"job_id"`
}

// String renders the contact as a stable identifier.
func (c JobContact) String() string {
	return fmt.Sprintf("gram://%s/%s (gk %s)", c.JobManagerAddr, c.JobID, c.GatekeeperAddr)
}

// StatusInfo is a status report for a job.
type StatusInfo struct {
	JobID string `json:"job_id"`
	// JobManagerAddr is set on pushed callbacks so the receiver can match
	// the report to the job's current remote incarnation: job IDs are only
	// unique per site, so a late callback from a cancelled incarnation at
	// one site could otherwise masquerade as the live one at another.
	JobManagerAddr string   `json:"jobmanager_addr,omitempty"`
	State          JobState `json:"state"`
	Error          string   `json:"error,omitempty"`
	// Fault classifies Error so the GridManager can choose a recovery
	// action (resubmit / retry / surface / hold) without parsing prose.
	Fault      faultclass.Class `json:"fault_class,omitempty"`
	ExitOK     bool             `json:"exit_ok"`
	StdoutSent int64            `json:"stdout_sent"` // bytes streamed so far
	StderrSent int64            `json:"stderr_sent"`
	LocalUser  string           `json:"local_user"`
}

// Runtime executes a staged job payload on the site. The live system uses
// FuncRuntime (jobs are registered Go functions, the moral equivalent of
// staged binaries); examples register domain workloads with it.
type Runtime interface {
	// Run executes the program. execData is the staged executable's
	// bytes; args, stdin, and the output writers mirror a Unix process.
	Run(ctx context.Context, execData []byte, args []string, stdin []byte, stdout, stderr io.Writer, env map[string]string) error
}

// FuncRuntime dispatches on the first line of the staged executable
// ("#!condor name"), executing a registered Go function. It stands in for
// arbitrary site binaries while keeping the full staging path honest: the
// bytes really do travel through GASS.
type FuncRuntime struct {
	mu    sync.RWMutex
	funcs map[string]JobFunc
}

// JobFunc is a registered program body.
type JobFunc func(ctx context.Context, args []string, stdin []byte, stdout, stderr io.Writer, env map[string]string) error

// NewFuncRuntime creates an empty runtime.
func NewFuncRuntime() *FuncRuntime {
	return &FuncRuntime{funcs: make(map[string]JobFunc)}
}

// Register binds a program name to a function.
func (r *FuncRuntime) Register(name string, fn JobFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// ProgramName extracts the program name from staged executable bytes.
func ProgramName(execData []byte) (string, error) {
	line := string(execData)
	if i := indexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	const prefix = "#!condor "
	if len(line) <= len(prefix) || line[:len(prefix)] != prefix {
		return "", fmt.Errorf("gram: executable is not a '#!condor <name>' program")
	}
	return line[len(prefix):], nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Program renders an executable blob for a registered program name.
func Program(name string) []byte { return []byte("#!condor " + name + "\n") }

// Run implements Runtime.
func (r *FuncRuntime) Run(ctx context.Context, execData []byte, args []string, stdin []byte, stdout, stderr io.Writer, env map[string]string) error {
	name, err := ProgramName(execData)
	if err != nil {
		return err
	}
	r.mu.RLock()
	fn, ok := r.funcs[name]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("gram: no such program %q on this site", name)
	}
	return fn(ctx, args, stdin, stdout, stderr, env)
}
