package gram

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gass"
	"condorg/internal/gsi"
	"condorg/internal/journal"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// Service names for auth-context binding.
const (
	GatekeeperService = "gram-gatekeeper"
	JobManagerService = "gram-jobmanager"
)

// DefaultCommitTimeout bounds how long an uncommitted submission survives
// before the site discards it (phase two of the two-phase commit never
// arrived, e.g. the client crashed between phases).
const DefaultCommitTimeout = 30 * time.Second

// SiteConfig configures a grid execution site (the right half of Fig. 1).
type SiteConfig struct {
	// Name identifies the site in logs and resource ads.
	Name string
	// Anchor is the trusted CA; nil disables authentication.
	Anchor *gsi.Certificate
	// Gridmap authorizes grid subjects; nil allows all authenticated
	// subjects (mapped to "nobody").
	Gridmap *gsi.Gridmap
	// CapabilityIssuer, when set, enables the §3.2 capability extension:
	// a subject absent from the gridmap is still authorized when its
	// request carries a "gram:submit" capability signed by this pinned
	// certificate (the site administrator).
	CapabilityIssuer *gsi.Certificate
	// Cluster is the local resource manager behind the Gatekeeper.
	Cluster *lrm.Cluster
	// Runtime executes staged programs.
	Runtime Runtime
	// StateDir is the site's stable storage for job records.
	StateDir string
	// Clock for auth decisions; defaults to wall time.
	Clock gsi.Clock
	// CommitTimeout overrides DefaultCommitTimeout.
	CommitTimeout time.Duration
	// GatekeeperAddr pins the Gatekeeper to an explicit address so a
	// fully restarted site comes back where clients expect it. Empty
	// selects a fresh loopback port.
	GatekeeperAddr string
	// AutoCommit disables the two-phase commit: jobs start the moment
	// the submit request is processed, as in pre-GRAM-2. Exists ONLY for
	// ablation A1, which demonstrates the duplicate executions this
	// causes under message loss.
	AutoCommit bool
	// GatekeeperFaults and JobManagerFaults inject protocol failures.
	GatekeeperFaults *wire.Faults
	JobManagerFaults *wire.Faults
}

// Site is one administrative domain: Gatekeeper + JobManagers + LRM.
type Site struct {
	cfg   SiteConfig
	store *journal.Store
	stage *stageCache

	mu      sync.Mutex
	gk      *wire.Server
	gkAddr  string // stable across restarts
	jobs    map[string]*siteJob
	serial  int
	crashed bool
	closing bool // Close in progress: LRM kills are site-lost, not failures
}

func (s *Site) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// siteJob is the server-side job record. Its persistent core (persistJob)
// survives Gatekeeper crashes via the journal store.
type siteJob struct {
	mu           sync.Mutex
	id           string
	submissionID string
	owner        string // grid subject
	localUser    string
	spec         JobSpec
	committed    bool
	lrmID        string
	callback     string // client callback address
	cred         *gsi.Credential
	jm           *JobManager
	status       StatusInfo
	stdout       outBuffer
	stderr       outBuffer
	commitTimer  *time.Timer
}

type persistJob struct {
	ID           string           `json:"id"`
	SubmissionID string           `json:"submission_id"`
	Owner        string           `json:"owner"`
	LocalUser    string           `json:"local_user"`
	Spec         JobSpec          `json:"spec"`
	Committed    bool             `json:"committed"`
	LrmID        string           `json:"lrm_id"`
	Callback     string           `json:"callback"`
	State        JobState         `json:"state"`
	Error        string           `json:"error,omitempty"`
	Fault        faultclass.Class `json:"fault_class,omitempty"`
}

// outBuffer accumulates a job output stream and tracks how much has been
// pushed to the client's GASS server.
type outBuffer struct {
	mu   sync.Mutex
	data []byte
	sent int64
}

func (b *outBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.data = append(b.data, p...)
	b.mu.Unlock()
	return len(p), nil
}

func (b *outBuffer) unsent() ([]byte, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.data[b.sent:]...), b.sent
}

func (b *outBuffer) markSent(n int64) {
	b.mu.Lock()
	b.sent += n
	b.mu.Unlock()
}

func (b *outBuffer) sentBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent
}

// NewSite starts a site: Gatekeeper listening on a fresh port, job records
// recovered from StateDir if present.
func NewSite(cfg SiteConfig) (*Site, error) {
	if cfg.Cluster == nil {
		return nil, errors.New("gram: site needs a cluster")
	}
	if cfg.Runtime == nil {
		return nil, errors.New("gram: site needs a runtime")
	}
	if cfg.Clock == nil {
		cfg.Clock = gsi.WallClock
	}
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = DefaultCommitTimeout
	}
	store, err := journal.OpenStore(filepath.Join(cfg.StateDir, "site-jobs"))
	if err != nil {
		return nil, err
	}
	stage, err := newStageCache(filepath.Join(cfg.StateDir, "stage-cache"))
	if err != nil {
		store.Close()
		return nil, err
	}
	s := &Site{cfg: cfg, store: store, stage: stage, jobs: make(map[string]*siteJob)}
	if err := s.recover(); err != nil {
		return nil, err
	}
	addr := cfg.GatekeeperAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if err := s.startGatekeeper(addr); err != nil {
		return nil, err
	}
	return s, nil
}

// recover loads persisted job records (no JobManagers are started; the
// client requests restarts per the protocol).
func (s *Site) recover() error {
	return s.store.ForEach(func(key string, raw json.RawMessage) error {
		var p persistJob
		if err := json.Unmarshal(raw, &p); err != nil {
			return err
		}
		job := &siteJob{
			id:           p.ID,
			submissionID: p.SubmissionID,
			owner:        p.Owner,
			localUser:    p.LocalUser,
			spec:         p.Spec,
			committed:    p.Committed,
			lrmID:        p.LrmID,
			callback:     p.Callback,
			status: StatusInfo{
				JobID: p.ID, State: p.State, Error: p.Error, Fault: p.Fault, LocalUser: p.LocalUser,
			},
		}
		s.jobs[p.ID] = job
		// Restore the ID counter past every recovered job: a restarted
		// site must never re-issue an ID, or the new submission would
		// overwrite the recovered record and clients probing the old
		// incarnation would silently read another job's status.
		if n := parseJobSerial(p.ID, s.cfg.Name); n > s.serial {
			s.serial = n
		}
		if p.Committed && !p.State.Terminal() {
			// A job that died mid-staging (no LRM handle yet) is gone:
			// the staging goroutine did not survive the restart, so it
			// would sit in stage-in forever. One that did reach the LRM
			// outlived the Gatekeeper crash only within one process
			// lifetime; across a true restart the cluster is fresh and
			// the job is gone. Reconcile both as site-lost — neither
			// ran to completion, so resubmission cannot double-execute.
			lost := p.LrmID == ""
			if !lost {
				if _, err := s.cfg.Cluster.Status(p.LrmID); err != nil {
					lost = true
				}
			}
			if lost {
				job.status.State = StateFailed
				job.status.Error = "lost by site restart"
				job.status.Fault = faultclass.SiteLost
				s.persist(job)
			}
		}
		return nil
	})
}

// parseJobSerial extracts N from a "<name>-jobN" identifier (0 when the ID
// has a different shape).
func parseJobSerial(id, name string) int {
	prefix := name + "-job"
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return 0
	}
	n := 0
	for _, c := range id[len(prefix):] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func (s *Site) persist(job *siteJob) {
	job.mu.Lock()
	defer job.mu.Unlock()
	p := persistJob{
		ID:           job.id,
		SubmissionID: job.submissionID,
		Owner:        job.owner,
		LocalUser:    job.localUser,
		Spec:         job.spec,
		Committed:    job.committed,
		LrmID:        job.lrmID,
		Callback:     job.callback,
		State:        job.status.State,
		Error:        job.status.Error,
		Fault:        job.status.Fault,
	}
	// A put can fail benignly when the site is shutting down (the store
	// closes while an LRM watcher delivers a final transition); that
	// state is lost with the site anyway.
	_ = s.store.Put(job.id, p)
}

func (s *Site) startGatekeeper(addr string) error {
	gk, err := wire.NewServerAddr(addr, wire.ServerConfig{
		Name:   GatekeeperService,
		Anchor: s.cfg.Anchor,
		Clock:  s.cfg.Clock,
		Faults: s.cfg.GatekeeperFaults,
	})
	if err != nil {
		return err
	}
	gk.Handle("gram.ping", func(string, json.RawMessage) (any, error) { return struct{}{}, nil })
	gk.Handle("gram.submit", s.handleSubmit)
	gk.Handle("gram.commit", s.handleCommit)
	gk.Handle("gram.jm-restart", s.handleJMRestart)
	gk.Handle("gram.stage-check", s.handleStageCheck)
	gk.Handle("gram.stage-chunk", s.handleStageChunk)
	gk.Handle("gram.stage-commit", s.handleStageCommit)
	gk.Handle("gram.batch-submit", s.handleBatchSubmit)
	gk.Handle("gram.batch-commit", s.handleBatchCommit)
	// The batched JobManager verbs live on the Gatekeeper because it is
	// the interface machine every JobManager of the site runs on: one
	// frame reaches all of them.
	gk.Handle("jm.batch-status", s.handleBatchStatus)
	gk.Handle("jm.batch-cancel", s.handleBatchCancel)
	s.mu.Lock()
	s.gk = gk
	s.gkAddr = gk.Addr()
	s.crashed = false
	s.mu.Unlock()
	return nil
}

// GatekeeperAddr returns the published contact address.
func (s *Site) GatekeeperAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gkAddr
}

// Name returns the site name.
func (s *Site) Name() string { return s.cfg.Name }

// Cluster exposes the LRM (resource ads need queue depth etc.).
func (s *Site) Cluster() *lrm.Cluster { return s.cfg.Cluster }

// ActiveJobs counts jobs that have not reached a terminal state. Glidein
// pilots use it as the idle signal for §5's runaway-daemon guard.
func (s *Site) ActiveJobs() int {
	s.mu.Lock()
	jobs := make([]*siteJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	n := 0
	for _, j := range jobs {
		j.mu.Lock()
		if !j.status.State.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// authorize maps a peer subject through the gridmap.
func (s *Site) authorize(peer string) (string, error) {
	if s.cfg.Anchor == nil {
		return "anonymous", nil
	}
	if s.cfg.Gridmap == nil {
		return "nobody", nil
	}
	return s.cfg.Gridmap.LocalUser(peer)
}

type submitReq struct {
	SubmissionID string  `json:"submission_id"`
	Spec         JobSpec `json:"spec"`
	Callback     string  `json:"callback,omitempty"`
	// Delegated is the serialized proxy forwarded to the site (§4.3).
	Delegated []byte `json:"delegated,omitempty"`
	// Capability is an optional serialized authorization grant (§3.2
	// capability extension) for subjects outside the gridmap.
	Capability []byte `json:"capability,omitempty"`
}

type submitResp struct {
	JobID          string `json:"job_id"`
	JobManagerAddr string `json:"jobmanager_addr"`
}

func (s *Site) handleSubmit(peer string, body json.RawMessage) (any, error) {
	var req submitReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	return s.submitOne(peer, req)
}

// submitOne runs a single submission through authorization, SubmissionID
// dedup, and JobManager startup. It is the shared core of gram.submit and
// each entry of gram.batch-submit.
func (s *Site) submitOne(peer string, req submitReq) (submitResp, error) {
	localUser, err := s.authorize(peer)
	if err != nil {
		// Gridmap refused: a capability signed by the site
		// administrator may still authorize this request.
		if s.cfg.CapabilityIssuer == nil || len(req.Capability) == 0 {
			return submitResp{}, err
		}
		cap, decErr := gsi.DecodeCapability(req.Capability)
		if decErr != nil {
			return submitResp{}, fmt.Errorf("gram: bad capability: %w", decErr)
		}
		localUser, err = cap.Verify(s.cfg.CapabilityIssuer, peer, "gram:submit", s.cfg.Clock())
		if err != nil {
			return submitResp{}, fmt.Errorf("gram: capability: %w", err)
		}
	}
	var cred *gsi.Credential
	if len(req.Delegated) > 0 {
		cred, err = gsi.DecodeCredential(req.Delegated)
		if err != nil {
			return submitResp{}, fmt.Errorf("gram: bad delegated credential: %w", err)
		}
		if err := s.checkDelegated(cred); err != nil {
			return submitResp{}, err
		}
	}

	s.mu.Lock()
	// Exactly-once across Gatekeeper restarts: a resent submission with a
	// known SubmissionID returns the existing job instead of a new one.
	if req.SubmissionID != "" {
		for _, job := range s.jobs {
			if job.submissionID == req.SubmissionID {
				existing := job
				s.mu.Unlock()
				existing.mu.Lock()
				defer existing.mu.Unlock()
				addr := ""
				if existing.jm != nil {
					addr = existing.jm.Addr()
				}
				return submitResp{JobID: existing.id, JobManagerAddr: addr}, nil
			}
		}
	}
	s.serial++
	id := fmt.Sprintf("%s-job%d", s.cfg.Name, s.serial)
	job := &siteJob{
		id:           id,
		submissionID: req.SubmissionID,
		owner:        peer,
		localUser:    localUser,
		spec:         req.Spec,
		callback:     req.Callback,
		cred:         cred,
		status:       StatusInfo{JobID: id, State: StateUnsubmitted, LocalUser: localUser},
	}
	s.jobs[id] = job
	s.mu.Unlock()

	jm, err := s.startJobManager(job)
	if err != nil {
		return submitResp{}, err
	}
	if s.cfg.AutoCommit {
		// Ablation A1: no second phase — execution commences now.
		job.mu.Lock()
		job.committed = true
		job.status.State = StateStageIn
		job.mu.Unlock()
		s.persist(job)
		go s.stageAndSubmit(job)
	} else {
		job.mu.Lock()
		job.commitTimer = time.AfterFunc(s.cfg.CommitTimeout, func() { s.expireUncommitted(id) })
		job.mu.Unlock()
		s.persist(job)
	}
	return submitResp{JobID: id, JobManagerAddr: jm.Addr()}, nil
}

// checkDelegated vets a proxy forwarded to this site: the chain must
// verify against the trust anchor (when one is configured) and any
// delegation scope in the chain must name this gatekeeper. A proxy minted
// for another site is refused with a Permanent fault — retrying cannot
// change the verdict, and classifying it Transient would burn the
// submitter's retry budget against a correctness rejection.
func (s *Site) checkDelegated(cred *gsi.Credential) error {
	self := s.GatekeeperAddr()
	if s.cfg.Anchor != nil {
		if _, err := gsi.VerifyChainAt(cred.Chain, s.cfg.Anchor, self, s.cfg.Clock()); err != nil {
			if errors.Is(err, gsi.ErrScope) {
				return faultclass.New(faultclass.Permanent, fmt.Errorf("gram: delegated credential: %w", err))
			}
			return fmt.Errorf("gram: delegated credential: %w", err)
		}
		return nil
	}
	// Open (anchorless) grids still honor the restriction: the scope is a
	// statement of intent by the delegator, meaningful without a PKI.
	if err := gsi.CheckScope(cred.Chain, self); err != nil {
		return faultclass.New(faultclass.Permanent, fmt.Errorf("gram: delegated credential: %w", err))
	}
	return nil
}

// expireUncommitted discards a submission whose commit never arrived.
func (s *Site) expireUncommitted(id string) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return
	}
	job.mu.Lock()
	if job.committed {
		job.mu.Unlock()
		return
	}
	job.status.State = StateFailed
	job.status.Error = "commit timeout: two-phase commit never completed"
	job.status.Fault = faultclass.SiteLost
	jm := job.jm
	job.jm = nil
	job.mu.Unlock()
	if jm != nil {
		jm.Close()
	}
	s.persist(job)
}

type commitReq struct {
	JobID string `json:"job_id"`
}

func (s *Site) handleCommit(peer string, body json.RawMessage) (any, error) {
	var req commitReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := s.commitOne(peer, req.JobID); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

// commitOne completes phase two for one job. Shared core of gram.commit
// and each entry of gram.batch-commit.
func (s *Site) commitOne(peer, jobID string) error {
	s.mu.Lock()
	job, ok := s.jobs[jobID]
	s.mu.Unlock()
	if !ok {
		// The site has no record of the job (e.g. it died before the
		// submission was persisted): it can never run here.
		return faultclass.New(faultclass.SiteLost,
			fmt.Errorf("gram: commit for unknown job %q", jobID))
	}
	if s.cfg.Anchor != nil && job.owner != peer {
		return fmt.Errorf("gram: job %s belongs to %s", jobID, job.owner)
	}
	job.mu.Lock()
	if job.committed {
		job.mu.Unlock()
		return nil // idempotent
	}
	if job.status.State == StateFailed {
		err := job.status.Error
		job.mu.Unlock()
		return fmt.Errorf("gram: job %s already failed: %s", jobID, err)
	}
	job.committed = true
	if job.commitTimer != nil {
		job.commitTimer.Stop()
	}
	job.status.State = StateStageIn
	job.mu.Unlock()
	s.persist(job)
	go s.stageAndSubmit(job)
	return nil
}

type jmRestartReq struct {
	JobID string `json:"job_id"`
}

type jmRestartResp struct {
	JobManagerAddr string `json:"jobmanager_addr"`
}

func (s *Site) handleJMRestart(peer string, body json.RawMessage) (any, error) {
	var req jmRestartReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	s.mu.Lock()
	job, ok := s.jobs[req.JobID]
	s.mu.Unlock()
	if !ok {
		// No record of the job survived on this site; tell the client it
		// is definitively lost here so it can resubmit.
		return nil, faultclass.New(faultclass.SiteLost,
			fmt.Errorf("gram: restart for unknown job %q", req.JobID))
	}
	if s.cfg.Anchor != nil && job.owner != peer {
		return nil, fmt.Errorf("gram: job %s belongs to %s", req.JobID, job.owner)
	}
	job.mu.Lock()
	if job.jm != nil {
		addr := job.jm.Addr()
		job.mu.Unlock()
		return jmRestartResp{JobManagerAddr: addr}, nil // still alive
	}
	job.mu.Unlock()
	jm, err := s.startJobManager(job)
	if err != nil {
		return nil, err
	}
	return jmRestartResp{JobManagerAddr: jm.Addr()}, nil
}

// stageAndSubmit performs stage-in through GASS and hands the job to the
// LRM. Runs outside any lock.
func (s *Site) stageAndSubmit(job *siteJob) {
	job.mu.Lock()
	spec := job.spec
	cred := job.cred
	job.mu.Unlock()

	gc := gass.NewClient(cred, s.cfg.Clock)
	defer gc.Close()

	// Failures before the LRM accepts the job mean it never ran here, so
	// the submitter may safely run it elsewhere (SiteLost) — except an
	// expired credential, which must surface as AuthExpired so the agent
	// holds the job for a refresh instead of burning resubmissions.
	fail := func(err error) {
		job.mu.Lock()
		job.status.State = StateFailed
		job.status.Error = err.Error()
		job.status.Fault = stageFaultClass(err)
		job.mu.Unlock()
		s.persist(job)
		s.notifyStatus(job)
	}

	execData, err := s.stageIn(gc, spec.Executable, spec.ExecutableHash)
	if err != nil {
		fail(fmt.Errorf("stage-in executable: %w", err))
		return
	}
	var stdin []byte
	if spec.Stdin != "" {
		stdin, err = s.stageIn(gc, spec.Stdin, "")
		if err != nil {
			fail(fmt.Errorf("stage-in stdin: %w", err))
			return
		}
	}

	lrmID, err := s.cfg.Cluster.Submit(lrm.Job{
		ID:        job.id + ".lrm",
		Owner:     job.localUser,
		Cpus:      spec.Cpus,
		WallLimit: spec.WallLimit,
		Run: func(ctx context.Context) error {
			env := map[string]string{}
			for k, v := range spec.Env {
				env[k] = v
			}
			if spec.GassURLFile != "" {
				env["GASS_URL_FILE"] = spec.GassURLFile
			}
			return s.cfg.Runtime.Run(ctx, execData, spec.Args, stdin, &job.stdout, &job.stderr, env)
		},
	}, spec.Estimate)
	if err != nil {
		fail(fmt.Errorf("lrm submit: %w", err))
		return
	}
	job.mu.Lock()
	job.lrmID = lrmID
	job.status.State = StatePending
	job.mu.Unlock()
	s.persist(job)
	s.notifyStatus(job)
	go s.watchLRM(job, lrmID)
}

// stageFaultClass classifies a stage-in failure. AuthExpired passes
// through (the client must refresh its proxy — resubmitting elsewhere with
// the same dead credential cannot help); everything else is SiteLost, since
// the job never reached this site's LRM.
func stageFaultClass(err error) faultclass.Class {
	if faultclass.ClassOf(err) == faultclass.AuthExpired {
		return faultclass.AuthExpired
	}
	return faultclass.SiteLost
}

// stageIn fetches a GASS URL through the site's content-addressed
// executable cache, or treats the string as inline program text when it has
// no URL scheme (used by tests and GlideIn bootstrap). A non-empty hash is
// the sha256 content address: a cache hit skips the transfer entirely, and
// a miss verifies the pulled bytes against the hash before caching them, so
// a job can never poison the cache entry of another program that shares its
// name.
func (s *Site) stageIn(gc *gass.Client, ref, hash string) ([]byte, error) {
	u, err := gass.ParseURL(ref)
	if err != nil {
		return []byte(ref), nil
	}
	if hash != "" {
		if data, ok := s.stage.get(hash); ok {
			s.stage.hits.Add(1)
			return data, nil
		}
		s.stage.misses.Add(1)
	}
	data, err := s.pullResumable(gc, u)
	if err != nil {
		return nil, err
	}
	if hash != "" {
		if got := HashExecutable(data); got != hash {
			return nil, fmt.Errorf("gram: staged bytes hash %s, client claimed %s", got[:12], hash[:12])
		}
		// Best-effort: a full cache disk never fails the job.
		_ = s.stage.put(hash, data)
	}
	return data, nil
}

// pullResumable reads a whole GASS file, preserving the byte offset across
// transport errors: a connection reset mid-transfer resumes from the last
// received chunk instead of restarting from zero. Remote application errors
// (the server answered; retrying cannot change the answer) return
// immediately.
func (s *Site) pullResumable(gc *gass.Client, u gass.URL) ([]byte, error) {
	const maxAttempts = 8
	var out []byte
	var off int64
	attempts := 0
	for {
		data, eof, err := gc.ReadAt(u, off, gass.ChunkSize)
		if err != nil {
			if wire.IsRemote(err) {
				return nil, err
			}
			attempts++
			if attempts >= maxAttempts {
				return nil, err
			}
			gc.Forget(u.Addr)
			time.Sleep(5 * time.Millisecond)
			continue
		}
		attempts = 0
		out = append(out, data...)
		off += int64(len(data))
		if eof || len(data) == 0 {
			return out, nil
		}
	}
}

// watchLRM polls the LRM for terminal state and mirrors transitions into
// the GRAM status. (The LRM also has callbacks; polling keeps this
// resilient to missed events and is how the real JobManager watches PBS.)
func (s *Site) watchLRM(job *siteJob, lrmID string) {
	for {
		st, err := s.cfg.Cluster.Status(lrmID)
		if err != nil {
			return
		}
		job.mu.Lock()
		var newState JobState
		switch st.State {
		case lrm.Queued:
			newState = StatePending
		case lrm.Running:
			newState = StateActive
		case lrm.Completed:
			newState = StateDone
		default: // Failed, Cancelled, TimedOut
			newState = StateFailed
			if st.State == lrm.Cancelled && s.isClosing() {
				// The site is going down, not the job: whatever the
				// LRM kills during shutdown is lost with the site and
				// safe to run elsewhere.
				if job.status.Error == "" {
					job.status.Error = "lost by site restart"
				}
				job.status.Fault = faultclass.SiteLost
			} else {
				if job.status.Error == "" {
					job.status.Error = st.State.String()
					if st.Error != "" {
						job.status.Error = st.Error
					}
				}
				// The job itself failed at a healthy site: retrying
				// elsewhere cannot change the verdict.
				if job.status.Fault == faultclass.Unknown {
					job.status.Fault = faultclass.Permanent
				}
			}
		}
		changed := newState != job.status.State
		job.status.State = newState
		job.status.ExitOK = st.State == lrm.Completed
		job.mu.Unlock()
		if changed {
			s.persist(job)
			s.notifyStatus(job)
		}
		if newState.Terminal() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// notifyStatus sends a status callback through the job's JobManager, if one
// is alive. Lost callbacks are fine: the GridManager also probes.
func (s *Site) notifyStatus(job *siteJob) {
	job.mu.Lock()
	jm := job.jm
	st := job.status
	job.mu.Unlock()
	if jm != nil {
		jm.sendCallback(st)
	}
}

// --- crash and partition injection (the §4.2 failure matrix) ---

// CrashJobManager kills only the JobManager process of a job; the LRM job
// keeps running (failure type 1).
func (s *Site) CrashJobManager(jobID string) error {
	s.mu.Lock()
	job, ok := s.jobs[jobID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("gram: no such job %q", jobID)
	}
	job.mu.Lock()
	jm := job.jm
	job.jm = nil
	job.mu.Unlock()
	if jm == nil {
		return errors.New("gram: jobmanager already down")
	}
	jm.Close()
	return nil
}

// CrashGatekeeperMachine simulates failure type 2: the interface machine
// hosting the Gatekeeper and every JobManager dies. Jobs already inside
// the LRM keep running.
func (s *Site) CrashGatekeeperMachine() {
	s.mu.Lock()
	gk := s.gk
	s.gk = nil
	s.crashed = true
	jobs := make([]*siteJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	if gk != nil {
		gk.Close()
	}
	for _, job := range jobs {
		job.mu.Lock()
		jm := job.jm
		job.jm = nil
		job.mu.Unlock()
		if jm != nil {
			jm.Close()
		}
	}
}

// RestartGatekeeperMachine brings the Gatekeeper back on its old address.
// JobManagers stay down until the client requests restarts.
func (s *Site) RestartGatekeeperMachine() error {
	s.mu.Lock()
	if !s.crashed {
		s.mu.Unlock()
		return errors.New("gram: gatekeeper is not down")
	}
	addr := s.gkAddr
	s.mu.Unlock()
	return s.startGatekeeper(addr)
}

// Partition severs and refuses all connections to the site until Heal —
// indistinguishable, from the client side, from a machine crash (the paper
// notes the GridManager cannot tell these apart).
func (s *Site) Partition() {
	s.mu.Lock()
	gk := s.gk
	jobs := make([]*siteJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	if gk != nil {
		gk.Pause()
	}
	for _, job := range jobs {
		job.mu.Lock()
		jm := job.jm
		job.mu.Unlock()
		if jm != nil {
			jm.srv.Pause()
		}
	}
}

// Heal ends a Partition.
func (s *Site) Heal() {
	s.mu.Lock()
	gk := s.gk
	jobs := make([]*siteJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	if gk != nil {
		gk.Resume()
	}
	for _, job := range jobs {
		job.mu.Lock()
		jm := job.jm
		job.mu.Unlock()
		if jm != nil {
			jm.srv.Resume()
		}
	}
}

// Close shuts the whole site down.
func (s *Site) Close() {
	s.mu.Lock()
	s.closing = true
	gk := s.gk
	s.gk = nil
	jobs := make([]*siteJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	if gk != nil {
		gk.Close()
	}
	for _, job := range jobs {
		job.mu.Lock()
		jm := job.jm
		job.jm = nil
		if job.commitTimer != nil {
			job.commitTimer.Stop()
		}
		job.mu.Unlock()
		if jm != nil {
			jm.Close()
		}
	}
	s.cfg.Cluster.Close()
	s.store.Close()
}
