package gram

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"condorg/internal/gass"
	"condorg/internal/gsi"
	"condorg/internal/wire"
)

// JobManager is the per-job daemon of Figure 1. It owns the job's wire
// endpoint (ping/status/cancel/credential-refresh), pushes stdout/stderr to
// the client's GASS server, and relays status callbacks. Killing a
// JobManager does not kill the underlying LRM job — that separation is the
// essence of GRAM's resource-side fault tolerance.
type JobManager struct {
	site *Site
	job  *siteJob
	srv  *wire.Server

	mu       sync.Mutex
	closed   bool
	cbClient *wire.Client
	stopPush chan struct{}
}

// startJobManager creates and registers a JobManager for job.
func (s *Site) startJobManager(job *siteJob) (*JobManager, error) {
	srv, err := wire.NewServer(wire.ServerConfig{
		Name:   JobManagerService,
		Anchor: s.cfg.Anchor,
		Clock:  s.cfg.Clock,
		Faults: s.cfg.JobManagerFaults,
	})
	if err != nil {
		return nil, err
	}
	jm := &JobManager{site: s, job: job, srv: srv, stopPush: make(chan struct{})}
	srv.Handle("jm.ping", func(string, json.RawMessage) (any, error) { return struct{}{}, nil })
	srv.Handle("jm.status", jm.handleStatus)
	srv.Handle("jm.cancel", jm.handleCancel)
	srv.Handle("jm.refresh-credential", jm.handleRefreshCredential)
	srv.Handle("jm.update-urlfile", jm.handleUpdateURLFile)
	job.mu.Lock()
	job.jm = jm
	cb := job.callback
	job.mu.Unlock()
	if cb != "" {
		jm.cbClient = wire.Dial(cb, wire.ClientConfig{
			ServerName: CallbackService,
			Credential: nil, // callbacks ride on the client's own channel trust
			Timeout:    time.Second,
			Retries:    1,
		})
	}
	go jm.pushLoop()
	return jm, nil
}

// Addr returns the JobManager's contact address.
func (jm *JobManager) Addr() string { return jm.srv.Addr() }

// Close simulates the JobManager process exiting (crash or normal exit).
func (jm *JobManager) Close() {
	jm.mu.Lock()
	if jm.closed {
		jm.mu.Unlock()
		return
	}
	jm.closed = true
	close(jm.stopPush)
	cb := jm.cbClient
	jm.mu.Unlock()
	jm.srv.Close()
	if cb != nil {
		cb.Close()
	}
}

func (jm *JobManager) authorized(peer string) error {
	if jm.site.cfg.Anchor == nil {
		return nil
	}
	jm.job.mu.Lock()
	owner := jm.job.owner
	jm.job.mu.Unlock()
	if peer != owner {
		return fmt.Errorf("gram: job belongs to %s", owner)
	}
	return nil
}

func (jm *JobManager) handleStatus(peer string, _ json.RawMessage) (any, error) {
	if err := jm.authorized(peer); err != nil {
		return nil, err
	}
	jm.job.mu.Lock()
	st := jm.job.status
	jm.job.mu.Unlock()
	st.StdoutSent = jm.job.stdout.sentBytes()
	st.StderrSent = jm.job.stderr.sentBytes()
	return st, nil
}

func (jm *JobManager) handleCancel(peer string, _ json.RawMessage) (any, error) {
	if err := jm.authorized(peer); err != nil {
		return nil, err
	}
	if err := jm.site.cancelJob(jm.job); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

type refreshCredReq struct {
	Delegated []byte `json:"delegated"`
}

func (jm *JobManager) handleRefreshCredential(peer string, body json.RawMessage) (any, error) {
	if err := jm.authorized(peer); err != nil {
		return nil, err
	}
	var req refreshCredReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	cred, err := gsi.DecodeCredential(req.Delegated)
	if err != nil {
		return nil, err
	}
	// The refreshed proxy passes the same vetting as the submit-time
	// delegation — chain verification plus site scope — so a renewed
	// credential cannot launder away the original restriction, and a proxy
	// refreshed for another site is refused with a Permanent fault.
	if err := jm.site.checkDelegated(cred); err != nil {
		return nil, err
	}
	if jm.site.cfg.Anchor != nil {
		if subject := cred.Subject(); subject != peer {
			return nil, fmt.Errorf("gram: refreshed credential subject %s != peer %s", subject, peer)
		}
	}
	jm.job.mu.Lock()
	jm.job.cred = cred
	jm.job.mu.Unlock()
	return struct{}{}, nil
}

type updateURLFileReq struct {
	Addr string `json:"addr"`
}

// handleUpdateURLFile rewrites the job's GASS URL file after the submission
// machine restarts with a new address (§4.2) and redirects the output push
// streams to the new server.
func (jm *JobManager) handleUpdateURLFile(peer string, body json.RawMessage) (any, error) {
	if err := jm.authorized(peer); err != nil {
		return nil, err
	}
	var req updateURLFileReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	jm.job.mu.Lock()
	spec := &jm.job.spec
	rewrite := func(urlStr string) string {
		u, err := gass.ParseURL(urlStr)
		if err != nil {
			return urlStr
		}
		u.Addr = req.Addr
		return u.String()
	}
	if spec.StdoutURL != "" {
		spec.StdoutURL = rewrite(spec.StdoutURL)
	}
	if spec.StderrURL != "" {
		spec.StderrURL = rewrite(spec.StderrURL)
	}
	urlFile := spec.GassURLFile
	jm.job.mu.Unlock()
	jm.site.persist(jm.job)
	if urlFile != "" {
		if err := gass.WriteURLFile(urlFile, req.Addr); err != nil {
			return nil, err
		}
	}
	return struct{}{}, nil
}

// pushLoop streams output buffers to the client's GASS URLs, resuming from
// the high-water mark after any failure — "real-time streaming of standard
// output and error".
func (jm *JobManager) pushLoop() {
	jm.job.mu.Lock()
	cred := jm.job.cred
	jm.job.mu.Unlock()
	gc := gass.NewClient(cred, jm.site.cfg.Clock)
	defer gc.Close()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-jm.stopPush:
			return
		case <-ticker.C:
			jm.job.mu.Lock()
			stdoutURL, stderrURL := jm.job.spec.StdoutURL, jm.job.spec.StderrURL
			jm.job.mu.Unlock()
			jm.pushStream(gc, &jm.job.stdout, stdoutURL)
			jm.pushStream(gc, &jm.job.stderr, stderrURL)
		}
	}
}

func (jm *JobManager) pushStream(gc *gass.Client, buf *outBuffer, urlStr string) {
	if urlStr == "" {
		return
	}
	data, _ := buf.unsent()
	if len(data) == 0 {
		return
	}
	u, err := gass.ParseURL(urlStr)
	if err != nil {
		return
	}
	if _, err := gc.Append(u, data); err != nil {
		return // client GASS unreachable; retry next tick from the mark
	}
	buf.markSent(int64(len(data)))
}

// sendCallback delivers a status change to the client's callback endpoint.
// Best effort: the GridManager also polls.
func (jm *JobManager) sendCallback(st StatusInfo) {
	jm.mu.Lock()
	cb := jm.cbClient
	closed := jm.closed
	jm.mu.Unlock()
	if cb == nil || closed {
		return
	}
	st.JobManagerAddr = jm.Addr() // identify the incarnation for the receiver
	go cb.Call("gram.callback", st, nil)
}

// CallbackService is the wire service name for client callback endpoints.
const CallbackService = "gram-callback"
