// Batched GRAM verbs (wire protocol v2). A GridManager managing many jobs
// at one site pays one frame, one syscall pair, and one auth check per
// *verb*, not per *job*: gram.batch-submit and gram.batch-commit carry N
// submissions through the two-phase commit, and jm.batch-status /
// jm.batch-cancel address a site's JobManagers collectively through the
// Gatekeeper — the interface machine all of a site's JobManagers live on
// (§4.1) — instead of one RPC per JobManager connection.
//
// Every batch op returns exactly one result per entry, in order, and a
// failing entry never fails the batch: per-entry errors carry their own
// fault class so the caller can hold, resubmit, or retry each job
// independently. Against a site that predates these verbs the whole call
// fails with "no such method" and the client remembers to fall back to
// the per-job protocol for that address.
package gram

import (
	"encoding/json"
	"fmt"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

type batchSubmitReq struct {
	Entries []submitReq `json:"entries"`
}

type batchSubmitResult struct {
	JobID          string           `json:"job_id,omitempty"`
	JobManagerAddr string           `json:"jobmanager_addr,omitempty"`
	Error          string           `json:"error,omitempty"`
	Fault          faultclass.Class `json:"fault,omitempty"`
}

type batchSubmitResp struct {
	Results []batchSubmitResult `json:"results"`
}

type batchIDsReq struct {
	JobIDs []string `json:"job_ids"`
}

// batchOpResult is the per-entry outcome of an op with no payload
// (commit, cancel).
type batchOpResult struct {
	Error string           `json:"error,omitempty"`
	Fault faultclass.Class `json:"fault,omitempty"`
}

type batchOpResp struct {
	Results []batchOpResult `json:"results"`
}

type batchStatusResult struct {
	Status StatusInfo `json:"status"`
	// JMAlive reports whether the job's JobManager daemon is currently
	// running. A batched probe that finds it dead skips the per-job ping
	// ladder and goes straight to gram.jm-restart.
	JMAlive bool             `json:"jm_alive"`
	Error   string           `json:"error,omitempty"`
	Fault   faultclass.Class `json:"fault,omitempty"`
}

type batchStatusResp struct {
	Results []batchStatusResult `json:"results"`
}

func opErr(err error) batchOpResult {
	return batchOpResult{Error: err.Error(), Fault: faultclass.ClassOf(err)}
}

func (s *Site) handleBatchSubmit(peer string, body json.RawMessage) (any, error) {
	var req batchSubmitReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	resp := batchSubmitResp{Results: make([]batchSubmitResult, len(req.Entries))}
	for i, e := range req.Entries {
		r, err := s.submitOne(peer, e)
		if err != nil {
			resp.Results[i] = batchSubmitResult{Error: err.Error(), Fault: faultclass.ClassOf(err)}
			continue
		}
		resp.Results[i] = batchSubmitResult{JobID: r.JobID, JobManagerAddr: r.JobManagerAddr}
	}
	return resp, nil
}

func (s *Site) handleBatchCommit(peer string, body json.RawMessage) (any, error) {
	var req batchIDsReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	resp := batchOpResp{Results: make([]batchOpResult, len(req.JobIDs))}
	for i, id := range req.JobIDs {
		if err := s.commitOne(peer, id); err != nil {
			resp.Results[i] = opErr(err)
		}
	}
	return resp, nil
}

func (s *Site) handleBatchStatus(peer string, body json.RawMessage) (any, error) {
	var req batchIDsReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	resp := batchStatusResp{Results: make([]batchStatusResult, len(req.JobIDs))}
	for i, id := range req.JobIDs {
		s.mu.Lock()
		job, ok := s.jobs[id]
		s.mu.Unlock()
		if !ok {
			// Same verdict a jm-restart for the job would reach: this
			// site has no record of it, so it is definitively lost here.
			resp.Results[i] = batchStatusResult{
				Error: fmt.Sprintf("gram: no record of job %q", id),
				Fault: faultclass.SiteLost,
			}
			continue
		}
		if s.cfg.Anchor != nil && job.owner != peer {
			resp.Results[i] = batchStatusResult{
				Error: fmt.Sprintf("gram: job %s belongs to %s", id, job.owner),
			}
			continue
		}
		job.mu.Lock()
		st := job.status
		alive := job.jm != nil
		job.mu.Unlock()
		st.StdoutSent = job.stdout.sentBytes()
		st.StderrSent = job.stderr.sentBytes()
		resp.Results[i] = batchStatusResult{Status: st, JMAlive: alive}
	}
	return resp, nil
}

func (s *Site) handleBatchCancel(peer string, body json.RawMessage) (any, error) {
	var req batchIDsReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	resp := batchOpResp{Results: make([]batchOpResult, len(req.JobIDs))}
	for i, id := range req.JobIDs {
		s.mu.Lock()
		job, ok := s.jobs[id]
		s.mu.Unlock()
		if !ok {
			// An unknown job cannot be running: report it lost so the
			// canceller can retire the tombstone.
			resp.Results[i] = opErr(faultclass.New(faultclass.SiteLost,
				fmt.Errorf("gram: no record of job %q", id)))
			continue
		}
		if s.cfg.Anchor != nil && job.owner != peer {
			resp.Results[i] = opErr(fmt.Errorf("gram: job %s belongs to %s", id, job.owner))
			continue
		}
		if err := s.cancelJob(job); err != nil {
			resp.Results[i] = opErr(err)
		}
	}
	return resp, nil
}

// cancelJob kills one job: not yet in the LRM means a direct Failed
// verdict (a cancellation is the user's own verdict — never retried),
// otherwise the LRM does it and the status flows back through watchLRM.
// Shared core of jm.cancel and each entry of jm.batch-cancel.
func (s *Site) cancelJob(job *siteJob) error {
	job.mu.Lock()
	lrmID := job.lrmID
	state := job.status.State
	job.mu.Unlock()
	if state.Terminal() {
		return nil
	}
	if lrmID == "" {
		job.mu.Lock()
		job.status.State = StateFailed
		job.status.Error = "cancelled before submission"
		job.status.Fault = faultclass.Permanent
		job.mu.Unlock()
		s.persist(job)
		return nil
	}
	return s.cfg.Cluster.Cancel(lrmID)
}

// --- client side ---

// BatchSubmitEntry is one submission in a BatchSubmit call.
type BatchSubmitEntry struct {
	Spec JobSpec
	Opts SubmitOptions
}

// BatchSubmitResult is one entry's outcome: Contact on success, Err (a
// *wire.RemoteError carrying the fault class) on a per-entry failure.
type BatchSubmitResult struct {
	Contact JobContact
	Err     error
}

// BatchStatusResult is one entry's outcome of a BatchStatus sweep.
type BatchStatusResult struct {
	Status  StatusInfo
	JMAlive bool
	Err     error
}

func entryErr(msg string, class faultclass.Class) error {
	if msg == "" {
		return nil
	}
	return &wire.RemoteError{Msg: msg, Class: class}
}

// noteBatch records whether addr understands the batch verbs, keyed off
// the whole-call error (nil or otherwise) of a batch op.
func (c *Client) noteBatch(addr string, err error) {
	if !wire.IsNoSuchMethod(err) {
		return
	}
	c.mu.Lock()
	c.noBatch[addr] = true
	c.mu.Unlock()
}

// BatchSupported reports whether the gatekeeper at addr is believed to
// understand the batch verbs: optimistically true until a batch call
// there comes back "no such method".
func (c *Client) BatchSupported(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.noBatch[addr]
}

// observeBatch feeds the batch-size histogram for one issued batch op.
func (c *Client) observeBatch(verb string, n int) {
	c.mu.Lock()
	reg := c.obs
	c.mu.Unlock()
	if reg != nil {
		reg.Histogram(obs.Key("gram_batch_size", "verb", verb)).Observe(float64(n))
	}
}

// BatchSubmit runs phase one for several jobs bound to the same
// gatekeeper in one frame. One result per entry, in order.
func (c *Client) BatchSubmit(gkAddr string, entries []BatchSubmitEntry) ([]BatchSubmitResult, error) {
	req := batchSubmitReq{Entries: make([]submitReq, len(entries))}
	for i, e := range entries {
		sr := submitReq{SubmissionID: e.Opts.SubmissionID, Spec: e.Spec, Callback: e.Opts.Callback}
		if e.Opts.Capability != nil {
			data, err := gsi.EncodeCapability(e.Opts.Capability)
			if err != nil {
				return nil, err
			}
			sr.Capability = data
		}
		if e.Opts.Delegate > 0 {
			data, err := c.delegateFor(gkAddr, e.Opts.Delegate)
			if err != nil {
				return nil, err
			}
			sr.Delegated = data
		}
		req.Entries[i] = sr
	}
	var resp batchSubmitResp
	if err := c.guard(gkAddr, "batch-submit", func() error {
		return c.gatekeeper(gkAddr).Call("gram.batch-submit", req, &resp)
	}); err != nil {
		c.noteBatch(gkAddr, err)
		return nil, err
	}
	if len(resp.Results) != len(entries) {
		return nil, fmt.Errorf("gram: batch-submit returned %d results for %d entries",
			len(resp.Results), len(entries))
	}
	c.observeBatch("submit", len(entries))
	out := make([]BatchSubmitResult, len(entries))
	for i, r := range resp.Results {
		if r.Error != "" {
			out[i].Err = entryErr(r.Error, r.Fault)
			continue
		}
		out[i].Contact = JobContact{
			JobManagerAddr: r.JobManagerAddr,
			GatekeeperAddr: gkAddr,
			JobID:          r.JobID,
		}
	}
	return out, nil
}

// BatchCommit runs phase two for several jobs in one frame. The returned
// slice has one entry per job ID: nil, or that entry's error.
func (c *Client) BatchCommit(gkAddr string, jobIDs []string) ([]error, error) {
	var resp batchOpResp
	if err := c.guard(gkAddr, "batch-commit", func() error {
		return c.gatekeeper(gkAddr).Call("gram.batch-commit", batchIDsReq{JobIDs: jobIDs}, &resp)
	}); err != nil {
		c.noteBatch(gkAddr, err)
		return nil, err
	}
	if len(resp.Results) != len(jobIDs) {
		return nil, fmt.Errorf("gram: batch-commit returned %d results for %d jobs",
			len(resp.Results), len(jobIDs))
	}
	c.observeBatch("commit", len(jobIDs))
	out := make([]error, len(jobIDs))
	for i, r := range resp.Results {
		out[i] = entryErr(r.Error, r.Fault)
	}
	return out, nil
}

// BatchStatus probes several jobs at one site in one frame, addressed to
// the gatekeeper (the machine the site's JobManagers run on) instead of
// each job's JobManager connection.
func (c *Client) BatchStatus(gkAddr string, jobIDs []string) ([]BatchStatusResult, error) {
	var resp batchStatusResp
	if err := c.guard(gkAddr, "batch-status", func() error {
		return c.gatekeeper(gkAddr).Call("jm.batch-status", batchIDsReq{JobIDs: jobIDs}, &resp)
	}); err != nil {
		c.noteBatch(gkAddr, err)
		return nil, err
	}
	if len(resp.Results) != len(jobIDs) {
		return nil, fmt.Errorf("gram: batch-status returned %d results for %d jobs",
			len(resp.Results), len(jobIDs))
	}
	c.observeBatch("status", len(jobIDs))
	out := make([]BatchStatusResult, len(jobIDs))
	for i, r := range resp.Results {
		if r.Error != "" {
			out[i].Err = entryErr(r.Error, r.Fault)
			continue
		}
		out[i] = BatchStatusResult{Status: r.Status, JMAlive: r.JMAlive}
	}
	return out, nil
}

// BatchCancel kills several jobs at one site in one frame. One error slot
// per job ID (nil = cancelled or already terminal).
func (c *Client) BatchCancel(gkAddr string, jobIDs []string) ([]error, error) {
	var resp batchOpResp
	if err := c.guard(gkAddr, "batch-cancel", func() error {
		return c.gatekeeper(gkAddr).Call("jm.batch-cancel", batchIDsReq{JobIDs: jobIDs}, &resp)
	}); err != nil {
		c.noteBatch(gkAddr, err)
		return nil, err
	}
	if len(resp.Results) != len(jobIDs) {
		return nil, fmt.Errorf("gram: batch-cancel returned %d results for %d jobs",
			len(resp.Results), len(jobIDs))
	}
	c.observeBatch("cancel", len(jobIDs))
	out := make([]error, len(jobIDs))
	for i, r := range resp.Results {
		out[i] = entryErr(r.Error, r.Fault)
	}
	return out, nil
}
