package gram

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
	"condorg/internal/obs"
	"condorg/internal/wire"
)

// Client is the submit-side GRAM library used by the GridManager. One
// client serves one user credential; connections to Gatekeepers and
// JobManagers are cached per address. Every network operation passes
// through a per-endpoint circuit breaker, so a dead site fast-fails
// instead of making each caller wait out the full timeout ladder.
type Client struct {
	clock gsi.Clock

	mu     sync.Mutex
	cred   *gsi.Credential
	health *faultclass.BreakerSet
	gkConn map[string]*wire.Client
	jmConn map[string]*wire.Client
	obs    *obs.Registry
	// timeouts are shortened by tests.
	timeout time.Duration
	retries int
	// codec/noSession select wire protocol v2 features for new
	// connections (SetWire).
	codec     string
	noSession bool
	// noBatch remembers gatekeepers that answered a batch verb with "no
	// such method": protocol capability, so it survives reconnects.
	noBatch map[string]bool
}

// NewClient creates a GRAM client authenticating as cred.
func NewClient(cred *gsi.Credential, clock gsi.Clock) *Client {
	if clock == nil {
		clock = gsi.WallClock
	}
	return &Client{
		clock:   clock,
		cred:    cred,
		health:  faultclass.NewBreakerSet(faultclass.BreakerConfig{}),
		gkConn:  make(map[string]*wire.Client),
		jmConn:  make(map[string]*wire.Client),
		timeout: 2 * time.Second,
		retries: 3,
		noBatch: make(map[string]bool),
	}
}

// SetWire selects the frame codec (wire.CodecJSON or wire.CodecBinary)
// and whether session auth is disabled for future connections. Existing
// connections are dropped so the change takes effect immediately.
func (c *Client) SetWire(codec string, disableSession bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.codec = codec
	c.noSession = disableSession
	for _, wc := range c.gkConn {
		wc.Close()
	}
	for _, wc := range c.jmConn {
		wc.Close()
	}
	c.gkConn = make(map[string]*wire.Client)
	c.jmConn = make(map[string]*wire.Client)
}

// SetBreakerConfig replaces the per-endpoint circuit breakers (dropping
// any accumulated failure state).
func (c *Client) SetBreakerConfig(cfg faultclass.BreakerConfig) {
	c.mu.Lock()
	c.health = faultclass.NewBreakerSet(cfg)
	c.mu.Unlock()
}

// SiteHealth reports the circuit breaker state for an endpoint address
// (a gatekeeper or jobmanager).
func (c *Client) SiteHealth(addr string) faultclass.BreakerState {
	c.mu.Lock()
	h := c.health
	c.mu.Unlock()
	return h.State(addr)
}

// SiteReady reports whether a call to addr would currently be admitted by
// its circuit breaker: closed, or open but due for its half-open probe.
// It does not consume the probe slot, so dispatchers can poll it to
// decide when a parked site queue may attempt the probe call.
func (c *Client) SiteReady(addr string) bool {
	c.mu.Lock()
	h := c.health
	c.mu.Unlock()
	return h.Ready(addr)
}

// SetObs attaches a metrics registry: per-verb round-trip histograms
// (gram_rtt_seconds{verb=...}), error counters by fault class, and
// breaker fast-fail counters. Nil detaches.
func (c *Client) SetObs(r *obs.Registry) {
	c.mu.Lock()
	c.obs = r
	c.mu.Unlock()
}

// HealthSnapshot reports breaker state for every endpoint this client has
// dialed. Endpoints whose breaker never tripped (or closed again) appear
// as Closed, so the site list is complete, not just the sick ones.
func (c *Client) HealthSnapshot() map[string]faultclass.BreakerInfo {
	c.mu.Lock()
	h := c.health
	addrs := make([]string, 0, len(c.gkConn)+len(c.jmConn))
	for addr := range c.gkConn {
		addrs = append(addrs, addr)
	}
	for addr := range c.jmConn {
		addrs = append(addrs, addr)
	}
	c.mu.Unlock()
	out := h.Snapshot()
	for _, addr := range addrs {
		if _, ok := out[addr]; !ok {
			out[addr] = faultclass.BreakerInfo{State: faultclass.Closed}
		}
	}
	return out
}

// guard runs op under addr's circuit breaker. An open breaker
// fast-fails with a Transient error before any network I/O; transport
// failures (not remote application errors — those prove the endpoint
// alive) count against the breaker. verb labels the metrics this call
// feeds (gram_rtt_seconds, gram_errors_total, gram_breaker_open_total).
func (c *Client) guard(addr, verb string, op func() error) error {
	c.mu.Lock()
	h := c.health
	reg := c.obs
	c.mu.Unlock()
	if !h.Allow(addr) {
		reg.Counter(obs.Key("gram_breaker_open_total", "verb", verb)).Inc()
		return faultclass.New(faultclass.Transient,
			fmt.Errorf("gram: %s: %w", addr, faultclass.ErrBreakerOpen))
	}
	start := time.Now()
	err := op()
	if reg != nil {
		reg.Histogram(obs.Key("gram_rtt_seconds", "verb", verb)).Observe(time.Since(start).Seconds())
		if err != nil {
			reg.Counter(obs.Key("gram_errors_total",
				"verb", verb, "class", faultclass.ClassOf(err).String())).Inc()
		}
	}
	if err != nil && !wire.IsRemote(err) {
		h.Failure(addr)
	} else {
		h.Success(addr)
	}
	return err
}

// SetTimeouts adjusts per-attempt timeout and retry count (tests shorten
// them so partition detection is fast).
func (c *Client) SetTimeouts(timeout time.Duration, retries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = timeout
	c.retries = retries
	for _, wc := range c.gkConn {
		wc.Close()
	}
	for _, wc := range c.jmConn {
		wc.Close()
	}
	c.gkConn = make(map[string]*wire.Client)
	c.jmConn = make(map[string]*wire.Client)
}

// SetCredential swaps in a refreshed proxy.
func (c *Client) SetCredential(cred *gsi.Credential) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cred = cred
	for _, wc := range c.gkConn {
		wc.SetCredential(cred)
	}
	for _, wc := range c.jmConn {
		wc.SetCredential(cred)
	}
}

// Credential returns the current proxy.
func (c *Client) Credential() *gsi.Credential {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cred
}

// conn returns (dialing if necessary) the cached connection for addr in
// the selected pool. The pool is chosen under the lock so Close (which
// replaces the maps) cannot race concurrent callers.
func (c *Client) conn(jm bool, addr, service string) *wire.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.gkConn
	if jm {
		m = c.jmConn
	}
	if wc, ok := m[addr]; ok {
		return wc
	}
	wc := wire.Dial(addr, wire.ClientConfig{
		ServerName:     service,
		Credential:     c.cred,
		Clock:          c.clock,
		Timeout:        c.timeout,
		Retries:        c.retries,
		Codec:          c.codec,
		DisableSession: c.noSession,
	})
	m[addr] = wc
	return wc
}

func (c *Client) gatekeeper(addr string) *wire.Client {
	return c.conn(false, addr, GatekeeperService)
}

func (c *Client) jobmanager(addr string) *wire.Client {
	return c.conn(true, addr, JobManagerService)
}

// Close releases all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, wc := range c.gkConn {
		wc.Close()
	}
	for _, wc := range c.jmConn {
		wc.Close()
	}
	c.gkConn = make(map[string]*wire.Client)
	c.jmConn = make(map[string]*wire.Client)
}

// NewSubmissionID mints the unique identifier the GridManager journals
// before phase one, making resubmission after any crash idempotent.
func NewSubmissionID() string {
	b := make([]byte, 10)
	rand.Read(b)
	return "sub-" + hex.EncodeToString(b)
}

// SubmitOptions carries the optional parts of a submission.
type SubmitOptions struct {
	// SubmissionID, when non-empty, deduplicates resubmissions. Journal
	// it before calling Submit.
	SubmissionID string
	// Callback is the client's callback endpoint address.
	Callback string
	// Delegate forwards a fresh proxy of this lifetime to the site.
	Delegate time.Duration
	// Capability accompanies the request for sites that authorize by
	// capability rather than gridmap (§3.2 extension).
	Capability *gsi.Capability
}

// delegateFor mints the site-scoped delegation payload for a request bound
// to gkAddr: a fresh proxy whose chain names the gatekeeper it is for, so
// the receiving site can exercise it locally but cannot replay it against
// any other site (restricted delegation, §4.3 / mediated-delegation model).
func (c *Client) delegateFor(gkAddr string, lifetime time.Duration) ([]byte, error) {
	c.mu.Lock()
	cred := c.cred
	c.mu.Unlock()
	if cred == nil {
		return nil, fmt.Errorf("gram: delegation requested without a credential")
	}
	proxy, err := gsi.DelegateScoped(cred, gkAddr, c.clock(), lifetime)
	if err != nil {
		return nil, fmt.Errorf("gram: delegate: %w", err)
	}
	return gsi.EncodeCredential(proxy)
}

// Submit runs phase one of the two-phase commit: the request travels with
// the submission ID, and a lost response is recovered by retrying the same
// wire sequence number. On success the job exists at the site in
// StateUnsubmitted, awaiting Commit.
func (c *Client) Submit(gkAddr string, spec JobSpec, opts SubmitOptions) (JobContact, error) {
	req := submitReq{SubmissionID: opts.SubmissionID, Spec: spec, Callback: opts.Callback}
	if opts.Capability != nil {
		data, err := gsi.EncodeCapability(opts.Capability)
		if err != nil {
			return JobContact{}, err
		}
		req.Capability = data
	}
	if opts.Delegate > 0 {
		data, err := c.delegateFor(gkAddr, opts.Delegate)
		if err != nil {
			return JobContact{}, err
		}
		req.Delegated = data
	}
	var resp submitResp
	if err := c.guard(gkAddr, "submit", func() error {
		return c.gatekeeper(gkAddr).Call("gram.submit", req, &resp)
	}); err != nil {
		return JobContact{}, err
	}
	return JobContact{
		JobManagerAddr: resp.JobManagerAddr,
		GatekeeperAddr: gkAddr,
		JobID:          resp.JobID,
	}, nil
}

// Commit runs phase two: "job execution can commence". Idempotent.
func (c *Client) Commit(contact JobContact) error {
	return c.guard(contact.GatekeeperAddr, "commit", func() error {
		return c.gatekeeper(contact.GatekeeperAddr).Call("gram.commit", commitReq{JobID: contact.JobID}, nil)
	})
}

// Status queries the JobManager for the job's current state.
func (c *Client) Status(contact JobContact) (StatusInfo, error) {
	var st StatusInfo
	err := c.guard(contact.JobManagerAddr, "status", func() error {
		return c.jobmanager(contact.JobManagerAddr).Call("jm.status", struct{}{}, &st)
	})
	return st, err
}

// Cancel asks the JobManager to kill the job.
func (c *Client) Cancel(contact JobContact) error {
	return c.guard(contact.JobManagerAddr, "cancel", func() error {
		return c.jobmanager(contact.JobManagerAddr).Call("jm.cancel", struct{}{}, nil)
	})
}

// PingJobManager probes the per-job daemon (single attempt, no retries):
// the GridManager's liveness check.
func (c *Client) PingJobManager(contact JobContact) error {
	return c.guard(contact.JobManagerAddr, "ping-jm", func() error {
		return c.jobmanager(contact.JobManagerAddr).Ping("jm.ping")
	})
}

// PingGatekeeper probes the site's interface machine.
func (c *Client) PingGatekeeper(addr string) error {
	return c.guard(addr, "ping-gk", func() error {
		return c.gatekeeper(addr).Ping("gram.ping")
	})
}

// StageCheck asks a site whether the executable with this content hash is
// already cached, and if not, from which offset an interrupted pre-stage
// should resume. Runs under the gatekeeper's circuit breaker like every
// other verb, so staging work fast-fails against a dead site.
func (c *Client) StageCheck(gkAddr, hash string) (present bool, offset int64, err error) {
	var resp stageCheckResp
	err = c.guard(gkAddr, "stage-check", func() error {
		return c.gatekeeper(gkAddr).Call("gram.stage-check", stageCheckReq{Hash: hash}, &resp)
	})
	return resp.Present, resp.Offset, err
}

// StageChunk pushes one chunk of executable bytes at offset. The returned
// ack is the contiguous prefix the site has on stable storage — the resume
// point a client journals.
func (c *Client) StageChunk(gkAddr, hash string, offset int64, data []byte) (acked int64, err error) {
	var resp stageChunkResp
	err = c.guard(gkAddr, "stage-chunk", func() error {
		return c.gatekeeper(gkAddr).Call("gram.stage-chunk", stageChunkReq{Hash: hash, Offset: offset, Data: data}, &resp)
	})
	return resp.Acked, err
}

// StageCommit asks the site to verify the assembled bytes (size + sha256)
// and promote them into its executable cache. Idempotent.
func (c *Client) StageCommit(gkAddr, hash string, total int64) error {
	return c.guard(gkAddr, "stage-commit", func() error {
		return c.gatekeeper(gkAddr).Call("gram.stage-commit", stageCommitReq{Hash: hash, Total: total}, nil)
	})
}

// RestartJobManager asks the Gatekeeper to start a replacement JobManager
// for a job whose daemon died. The returned contact has the new address.
func (c *Client) RestartJobManager(contact JobContact) (JobContact, error) {
	var resp jmRestartResp
	err := c.guard(contact.GatekeeperAddr, "jm-restart", func() error {
		return c.gatekeeper(contact.GatekeeperAddr).Call("gram.jm-restart", jmRestartReq{JobID: contact.JobID}, &resp)
	})
	if err != nil {
		return contact, err
	}
	// Drop any cached connection to the dead JobManager.
	c.mu.Lock()
	if wc, ok := c.jmConn[contact.JobManagerAddr]; ok && contact.JobManagerAddr != resp.JobManagerAddr {
		wc.Close()
		delete(c.jmConn, contact.JobManagerAddr)
	}
	c.mu.Unlock()
	contact.JobManagerAddr = resp.JobManagerAddr
	return contact, nil
}

// RefreshCredential re-forwards a fresh proxy to the job's site (§4.3).
// The forwarded proxy is scoped to the job's gatekeeper like the original
// submit-time delegation, and the call is in-band: the running JobManager
// swaps credentials without the job being held or interrupted.
func (c *Client) RefreshCredential(contact JobContact, lifetime time.Duration) error {
	data, err := c.delegateFor(contact.GatekeeperAddr, lifetime)
	if err != nil {
		return err
	}
	return c.guard(contact.JobManagerAddr, "refresh-credential", func() error {
		return c.jobmanager(contact.JobManagerAddr).Call("jm.refresh-credential", refreshCredReq{Delegated: data}, nil)
	})
}

// UpdateURLFile tells the JobManager the client's GASS server moved.
func (c *Client) UpdateURLFile(contact JobContact, newAddr string) error {
	return c.guard(contact.JobManagerAddr, "update-urlfile", func() error {
		return c.jobmanager(contact.JobManagerAddr).Call("jm.update-urlfile", updateURLFileReq{Addr: newAddr}, nil)
	})
}
