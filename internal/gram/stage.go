package gram

// The staging data plane's site half: a content-addressed executable cache
// plus the chunked, resumable pre-stage protocol the GridManager pushes
// through (gram.stage-check / stage-chunk / stage-commit).
//
// Cache layout under StateDir/stage-cache:
//
//	objects/<sha256>       completed files, verified before rename
//	partial/<sha256>.part  in-flight upload, chunks written at any offset
//	partial/<sha256>.off   persisted contiguous acked offset
//
// Resume contract: stage-chunk is idempotent and accepts chunks at any
// offset; the server acknowledges the longest contiguous prefix written
// from zero. The .off sidecar persists that ack, so a client that crashed
// (or whose connection was reset mid-chunk) asks stage-check where to
// resume and re-sends only the unacked tail. A crash can forget
// out-of-order chunks beyond the ack — re-sending them is safe, and the
// final sha256 verification at stage-commit is the authority on content.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// HashExecutable returns the content address (sha256, lowercase hex) of an
// executable blob — the key of the per-site stage cache.
func HashExecutable(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validHash guards the cache against path traversal: hashes are exactly 64
// lowercase hex characters and nothing else reaches the filesystem.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// stagePart tracks one in-flight partial upload: the written byte ranges
// (merged intervals) and the contiguous acked prefix.
type stagePart struct {
	acked  int64
	ranges [][2]int64 // sorted, disjoint written ranges beyond acked
}

// advance folds a newly written [off, end) range in and returns the new
// contiguous ack.
func (p *stagePart) advance(off, end int64) int64 {
	p.ranges = append(p.ranges, [2]int64{off, end})
	sort.Slice(p.ranges, func(i, j int) bool { return p.ranges[i][0] < p.ranges[j][0] })
	merged := p.ranges[:0]
	for _, r := range p.ranges {
		if n := len(merged); n > 0 && r[0] <= merged[n-1][1] {
			if r[1] > merged[n-1][1] {
				merged[n-1][1] = r[1]
			}
			continue
		}
		merged = append(merged, r)
	}
	p.ranges = merged
	for len(p.ranges) > 0 && p.ranges[0][0] <= p.acked {
		if p.ranges[0][1] > p.acked {
			p.acked = p.ranges[0][1]
		}
		p.ranges = p.ranges[1:]
	}
	return p.acked
}

// stageCache is the site's content-addressed executable store.
type stageCache struct {
	root string

	mu    sync.Mutex
	parts map[string]*stagePart

	bytesReceived atomic.Int64 // chunk payload bytes accepted over the wire
	hits          atomic.Int64 // committed jobs served from the cache
	misses        atomic.Int64 // committed jobs that had to pull
}

func newStageCache(root string) (*stageCache, error) {
	for _, d := range []string{filepath.Join(root, "objects"), filepath.Join(root, "partial")} {
		if err := os.MkdirAll(d, 0o700); err != nil {
			return nil, err
		}
	}
	return &stageCache{root: root, parts: make(map[string]*stagePart)}, nil
}

func (c *stageCache) objectPath(hash string) string {
	return filepath.Join(c.root, "objects", hash)
}

func (c *stageCache) partPath(hash string) string {
	return filepath.Join(c.root, "partial", hash+".part")
}

func (c *stageCache) offPath(hash string) string {
	return filepath.Join(c.root, "partial", hash+".off")
}

// get returns the cached bytes for hash, if complete.
func (c *stageCache) get(hash string) ([]byte, bool) {
	if !validHash(hash) {
		return nil, false
	}
	data, err := os.ReadFile(c.objectPath(hash))
	if err != nil {
		return nil, false
	}
	return data, true
}

// put stores verified bytes under their hash (atomic via temp + rename).
func (c *stageCache) put(hash string, data []byte) error {
	if !validHash(hash) {
		return fmt.Errorf("gram: bad stage hash %q", hash)
	}
	dst := c.objectPath(hash)
	if _, err := os.Stat(dst); err == nil {
		return nil // already cached
	}
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, data, 0o700); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}

// part returns (loading persisted state if needed) the in-flight partial
// for hash. Caller holds c.mu.
func (c *stageCache) partLocked(hash string) *stagePart {
	if p, ok := c.parts[hash]; ok {
		return p
	}
	p := &stagePart{}
	// A .off sidecar from a previous incarnation resumes the ack; the
	// bytes beyond it in the .part file are untrusted and re-sent.
	if raw, err := os.ReadFile(c.offPath(hash)); err == nil {
		if off, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64); err == nil && off > 0 {
			if fi, err := os.Stat(c.partPath(hash)); err == nil && off <= fi.Size() {
				p.acked = off
			}
		}
	}
	c.parts[hash] = p
	return p
}

// check reports whether hash is complete, and otherwise where to resume.
func (c *stageCache) check(hash string) (present bool, offset int64) {
	if _, err := os.Stat(c.objectPath(hash)); err == nil {
		return true, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return false, c.partLocked(hash).acked
}

// write lands one chunk at off and returns the new contiguous ack.
func (c *stageCache) write(hash string, off int64, data []byte) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := os.Stat(c.objectPath(hash)); err == nil {
		// Already complete (a second client raced the same binary in):
		// acknowledge everything so the sender stops.
		return off + int64(len(data)), nil
	}
	p := c.partLocked(hash)
	f, err := os.OpenFile(c.partPath(hash), os.O_CREATE|os.O_WRONLY, 0o600)
	if err != nil {
		return 0, err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	c.bytesReceived.Add(int64(len(data)))
	prev := p.acked
	acked := p.advance(off, off+int64(len(data)))
	if acked != prev {
		// Persist the ack so a site restart resumes instead of restarting.
		_ = os.WriteFile(c.offPath(hash), []byte(strconv.FormatInt(acked, 10)), 0o600)
	}
	return acked, nil
}

// commit verifies the assembled partial (size + sha256) and promotes it to
// objects/. Idempotent; a failed verification discards the partial so the
// next attempt restarts clean.
func (c *stageCache) commit(hash string, total int64) error {
	if _, err := os.Stat(c.objectPath(hash)); err == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	part := c.partPath(hash)
	data, err := os.ReadFile(part)
	if err != nil {
		return fmt.Errorf("gram: stage commit %s: %w", hash[:12], err)
	}
	if int64(len(data)) > total {
		data = data[:total]
	}
	discard := func() {
		os.Remove(part)
		os.Remove(c.offPath(hash))
		delete(c.parts, hash)
	}
	if int64(len(data)) != total {
		discard()
		return fmt.Errorf("gram: stage commit %s: assembled %d bytes, expected %d", hash[:12], len(data), total)
	}
	if got := HashExecutable(data); got != hash {
		discard()
		return fmt.Errorf("gram: stage commit: content hash %s does not match claimed %s", got[:12], hash[:12])
	}
	if err := os.WriteFile(c.objectPath(hash)+".tmp", data, 0o700); err != nil {
		return err
	}
	if err := os.Rename(c.objectPath(hash)+".tmp", c.objectPath(hash)); err != nil {
		return err
	}
	discard()
	return nil
}

// --- gatekeeper wire ops ---

type stageCheckReq struct {
	Hash string `json:"hash"`
}

type stageCheckResp struct {
	Present bool  `json:"present"`
	Offset  int64 `json:"offset"` // resume point when not present
}

type stageChunkReq struct {
	Hash   string `json:"hash"`
	Offset int64  `json:"offset"`
	Data   []byte `json:"data"`
}

type stageChunkResp struct {
	Acked int64 `json:"acked"` // contiguous prefix now on stable storage
}

type stageCommitReq struct {
	Hash  string `json:"hash"`
	Total int64  `json:"total"`
}

func (s *Site) stageAuthorize(peer, hash string) error {
	if _, err := s.authorize(peer); err != nil {
		return err
	}
	if !validHash(hash) {
		return fmt.Errorf("gram: bad stage hash %q", hash)
	}
	return nil
}

func (s *Site) handleStageCheck(peer string, body json.RawMessage) (any, error) {
	var req stageCheckReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := s.stageAuthorize(peer, req.Hash); err != nil {
		return nil, err
	}
	present, off := s.stage.check(req.Hash)
	return stageCheckResp{Present: present, Offset: off}, nil
}

func (s *Site) handleStageChunk(peer string, body json.RawMessage) (any, error) {
	var req stageChunkReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := s.stageAuthorize(peer, req.Hash); err != nil {
		return nil, err
	}
	acked, err := s.stage.write(req.Hash, req.Offset, req.Data)
	if err != nil {
		return nil, err
	}
	return stageChunkResp{Acked: acked}, nil
}

func (s *Site) handleStageCommit(peer string, body json.RawMessage) (any, error) {
	var req stageCommitReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if err := s.stageAuthorize(peer, req.Hash); err != nil {
		return nil, err
	}
	if err := s.stage.commit(req.Hash, req.Total); err != nil {
		return nil, err
	}
	return struct{}{}, nil
}

// StageBytesReceived reports the chunk payload bytes this site has accepted
// through the stage plane — the regression tests' re-sent-byte meter.
func (s *Site) StageBytesReceived() int64 { return s.stage.bytesReceived.Load() }

// StageCacheStats reports executable-cache hits and misses for committed
// jobs at this site.
func (s *Site) StageCacheStats() (hits, misses int64) {
	return s.stage.hits.Load(), s.stage.misses.Load()
}
