package gram

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gass"
	"condorg/internal/wire"
)

// TestStagePartAdvance: out-of-order chunk ranges merge into the
// contiguous ack only once the gap before them is filled.
func TestStagePartAdvance(t *testing.T) {
	p := &stagePart{}
	if got := p.advance(10, 20); got != 0 {
		t.Fatalf("ack after gap write = %d, want 0", got)
	}
	if got := p.advance(30, 40); got != 0 {
		t.Fatalf("ack after second gap write = %d, want 0", got)
	}
	if got := p.advance(0, 10); got != 20 {
		t.Fatalf("ack after filling first gap = %d, want 20", got)
	}
	if got := p.advance(20, 30); got != 40 {
		t.Fatalf("ack after filling second gap = %d, want 40", got)
	}
	// Overlapping re-sends are idempotent.
	if got := p.advance(0, 25); got != 40 {
		t.Fatalf("ack after overlapping re-send = %d, want 40", got)
	}
}

// TestStageCacheResume: the .off sidecar survives a cache reopen (site
// restart), so the resume point is the persisted ack, not zero — and
// chunks written beyond the ack before the crash are re-sent safely.
func TestStageCacheResume(t *testing.T) {
	root := t.TempDir()
	c, err := newStageCache(root)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("stage-cache-resume ", 100))
	hash := HashExecutable(data)

	if _, err := c.write(hash, 0, data[:500]); err != nil {
		t.Fatal(err)
	}
	// An out-of-order chunk lands but cannot be acked yet.
	if acked, err := c.write(hash, 700, data[700:900]); err != nil || acked != 500 {
		t.Fatalf("acked = %d, err = %v; want 500", acked, err)
	}

	// Simulate a site restart: a fresh cache over the same directory.
	c2, err := newStageCache(root)
	if err != nil {
		t.Fatal(err)
	}
	present, off := c2.check(hash)
	if present || off != 500 {
		t.Fatalf("check after reopen = (%v, %d), want (false, 500)", present, off)
	}
	// Resume from the ack; the previously written out-of-order range is
	// forgotten and re-sent.
	if _, err := c2.write(hash, 500, data[500:]); err != nil {
		t.Fatal(err)
	}
	if err := c2.commit(hash, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	got, ok := c2.get(hash)
	if !ok || string(got) != string(data) {
		t.Fatalf("cached object missing or corrupt after resume")
	}
	// Commit cleans the partial state.
	if present, off := c2.check(hash); !present || off != 0 {
		t.Fatalf("check after commit = (%v, %d), want (true, 0)", present, off)
	}
}

// TestStageCommitVerifyDiscard: a commit whose assembled bytes do not
// match the claimed hash discards the partial, so the next attempt
// restarts from zero rather than resuming corrupt state.
func TestStageCommitVerifyDiscard(t *testing.T) {
	c, err := newStageCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the real executable bytes")
	hash := HashExecutable(data)
	if _, err := c.write(hash, 0, []byte("corrupted executable bytes!!!")[:len(data)]); err != nil {
		t.Fatal(err)
	}
	if err := c.commit(hash, int64(len(data))); err == nil {
		t.Fatal("commit of corrupt partial succeeded")
	}
	if present, off := c.check(hash); present || off != 0 {
		t.Fatalf("check after failed commit = (%v, %d), want (false, 0)", present, off)
	}
	// Short partials are rejected too.
	if _, err := c.write(hash, 0, data[:4]); err != nil {
		t.Fatal(err)
	}
	if err := c.commit(hash, int64(len(data))); err == nil {
		t.Fatal("commit of short partial succeeded")
	}
}

// TestStageHashValidation: only 64-char lowercase hex reaches the
// filesystem — anything else (traversal attempts included) is rejected.
func TestStageHashValidation(t *testing.T) {
	for _, bad := range []string{
		"", "abc", "../../../../etc/passwd",
		strings.Repeat("A", 64), // uppercase
		strings.Repeat("g", 64), // non-hex
		strings.Repeat("a", 63) + "/",
	} {
		if validHash(bad) {
			t.Errorf("validHash(%q) = true", bad)
		}
	}
	if !validHash(HashExecutable([]byte("x"))) {
		t.Error("validHash rejected a real sha256")
	}
}

// TestStageFaultClass: a stage-in failure already classified AuthExpired
// keeps its class (the agent must hold the job, not resubmit); everything
// else is the site's loss.
func TestStageFaultClass(t *testing.T) {
	authErr := faultclass.New(faultclass.AuthExpired, errors.New("proxy expired"))
	if got := stageFaultClass(authErr); got != faultclass.AuthExpired {
		t.Fatalf("stageFaultClass(auth) = %v, want AuthExpired", got)
	}
	if got := stageFaultClass(errors.New("connection refused")); got != faultclass.SiteLost {
		t.Fatalf("stageFaultClass(raw) = %v, want SiteLost", got)
	}
}

// TestStageWireProtocol: the full check → chunk → commit conversation
// against a live gatekeeper, including idempotent re-sends and the
// present-answer for a second client pushing the same binary.
func TestStageWireProtocol(t *testing.T) {
	g := newTestGrid(t)
	gk := g.site.GatekeeperAddr()
	data := []byte(strings.Repeat("wire-protocol-blob ", 64))
	hash := HashExecutable(data)

	present, off, err := g.client.StageCheck(gk, hash)
	if err != nil || present || off != 0 {
		t.Fatalf("initial StageCheck = (%v, %d, %v), want (false, 0, nil)", present, off, err)
	}
	half := int64(len(data) / 2)
	if acked, err := g.client.StageChunk(gk, hash, 0, data[:half]); err != nil || acked != half {
		t.Fatalf("first chunk acked = %d, err = %v; want %d", acked, err, half)
	}
	if acked, err := g.client.StageChunk(gk, hash, half, data[half:]); err != nil || acked != int64(len(data)) {
		t.Fatalf("second chunk acked = %d, err = %v; want %d", acked, err, len(data))
	}
	if err := g.client.StageCommit(gk, hash, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	// Committed: a second client asking about the same content is told so.
	if present, _, err := g.client.StageCheck(gk, hash); err != nil || !present {
		t.Fatalf("StageCheck after commit = (%v, %v), want (true, nil)", present, err)
	}
	// Chunks for a committed object ack without rewriting anything.
	if acked, err := g.client.StageChunk(gk, hash, 0, data[:half]); err != nil || acked != half {
		t.Fatalf("post-commit chunk acked = %d, err = %v", acked, err)
	}
	// A bogus hash never reaches the filesystem.
	if _, _, err := g.client.StageCheck(gk, "../escape"); err == nil {
		t.Fatal("StageCheck accepted a traversal hash")
	}
}

// TestStageInCacheHit: a job whose spec carries ExecutableHash is served
// from the site cache once the bytes are staged — the site never pulls
// over GASS again for the same content.
func TestStageInCacheHit(t *testing.T) {
	g := newTestGrid(t)
	gk := g.site.GatekeeperAddr()
	prog := Program("echo")
	hash := HashExecutable(prog)

	// Pre-stage the bytes the way the agent's data plane would.
	if _, err := g.client.StageChunk(gk, hash, 0, prog); err != nil {
		t.Fatal(err)
	}
	if err := g.client.StageCommit(gk, hash, int64(len(prog))); err != nil {
		t.Fatal(err)
	}

	outURL := g.gassS.URLFor("out/echo.out")
	contact := g.submitAndCommit(t, JobSpec{
		// The executable reference points at a GASS path that does NOT
		// exist: a pull would fail, so success proves the cache served it.
		Executable:     g.gassS.URLFor("bin/missing").String(),
		ExecutableHash: hash,
		Args:           []string{"hello"},
		StdoutURL:      outURL.String(),
	})
	st := waitGramState(t, g.client, contact, StateDone)
	if !st.ExitOK {
		t.Fatalf("job failed: %+v", st)
	}
	hits, _ := g.site.StageCacheStats()
	if hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	// Output streaming is asynchronous to the Done state.
	deadline := time.Now().Add(2 * time.Second)
	for {
		out, err := g.gassC.ReadAll(outURL)
		if err == nil && strings.Contains(string(out), "hello") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout = %q, err = %v", out, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStageInHashMismatchRejected: a client that claims hash H but whose
// spool serves different bytes must not poison the cache — stage-in fails
// and nothing is stored under H.
func TestStageInHashMismatchRejected(t *testing.T) {
	g := newTestGrid(t)
	ref := g.stageProgram(t, "echo")
	wrong := HashExecutable([]byte("some other program entirely"))
	contact := g.submitAndCommit(t, JobSpec{
		Executable:     ref,
		ExecutableHash: wrong,
		Args:           []string{"x"},
	})
	st := waitGramState(t, g.client, contact, StateFailed)
	if !strings.Contains(st.Error, "hash") {
		t.Fatalf("error = %q, want hash mismatch", st.Error)
	}
	if _, ok := g.site.stage.get(wrong); ok {
		t.Fatal("mismatched bytes were cached under the claimed hash")
	}
}

// TestPullResumableContinuesAfterReset: the site's GASS pull survives
// connection resets by re-asking from the last received offset — the
// read count proves it continued rather than restarting from byte zero.
func TestPullResumableContinuesAfterReset(t *testing.T) {
	var faults wire.Faults
	gs, err := gass.NewServer(t.TempDir(), gass.ServerOptions{Faults: &faults})
	if err != nil {
		t.Fatal(err)
	}
	defer gs.Close()
	gc := gass.NewClient(nil, nil)
	defer gc.Close()

	// 8 chunks' worth of payload.
	payload := make([]byte, 8*gass.ChunkSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	u := gs.URLFor("big/blob")
	if err := gc.WriteFile(u, payload); err != nil {
		t.Fatal(err)
	}

	// Reset the response of every third read: the pull must resume, not
	// restart.
	var reads atomic.Int64
	faults.SetConn(nil, nil, func(m string) bool {
		if m != "gass.read" {
			return false
		}
		return reads.Add(1)%3 == 0
	})

	site := &Site{}
	puller := gass.NewClient(nil, nil)
	defer puller.Close()
	got, err := site.pullResumable(puller, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("pulled %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	// 8 data chunks + 1 EOF probe + the torn reads that were retried. A
	// restart-from-zero strategy would need well over twice that.
	if n := reads.Load(); n > 14 {
		t.Fatalf("pull made %d reads; resuming should need at most 14", n)
	}
}

// TestStageInAuthExpiredHoldsClass: a stage pull that fails with an
// expired credential keeps AuthExpired so the agent holds the job instead
// of blindly resubmitting. Uses a GASS server that always rejects with a
// typed auth fault via the remote error path.
func TestStageInAuthExpiredHoldsClass(t *testing.T) {
	err := faultclass.New(faultclass.AuthExpired, fmt.Errorf("proxy expired at %s", time.Now().Format(time.RFC3339)))
	if got := stageFaultClass(fmt.Errorf("stage-in: %w", err)); got != faultclass.AuthExpired {
		t.Fatalf("wrapped auth fault classified %v", got)
	}
}
