package gram

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gass"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// testRuntime registers the small program library used across the tests.
func testRuntime() *FuncRuntime {
	rt := NewFuncRuntime()
	rt.Register("echo", func(_ context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		fmt.Fprintln(stdout, strings.Join(args, " "))
		return nil
	})
	rt.Register("cat", func(_ context.Context, _ []string, stdin []byte, stdout, _ io.Writer, _ map[string]string) error {
		stdout.Write(stdin)
		return nil
	})
	rt.Register("fail", func(_ context.Context, _ []string, _ []byte, _, stderr io.Writer, _ map[string]string) error {
		fmt.Fprintln(stderr, "something broke")
		return errors.New("exit 1")
	})
	rt.Register("sleep", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		d := 50 * time.Millisecond
		if len(args) > 0 {
			if p, err := time.ParseDuration(args[0]); err == nil {
				d = p
			}
		}
		select {
		case <-time.After(d):
			fmt.Fprintln(stdout, "slept")
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	return rt
}

type testGrid struct {
	site   *Site
	client *Client
	gassS  *gass.Server // submit-side GASS server (stdout lands here)
	gassC  *gass.Client
}

func newTestGrid(t *testing.T, opts ...func(*SiteConfig)) *testGrid {
	t.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: "site", Cpus: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SiteConfig{
		Name:          "wisc",
		Cluster:       cluster,
		Runtime:       testRuntime(),
		StateDir:      t.TempDir(),
		CommitTimeout: time.Second,
	}
	for _, o := range opts {
		o(&cfg)
	}
	site, err := NewSite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	gs, err := gass.NewServer(t.TempDir(), gass.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gs.Close() })
	client := NewClient(nil, nil)
	client.SetTimeouts(300*time.Millisecond, 3)
	t.Cleanup(client.Close)
	gc := gass.NewClient(nil, nil)
	t.Cleanup(gc.Close)
	return &testGrid{site: site, client: client, gassS: gs, gassC: gc}
}

// stageProgram uploads a "#!condor <name>" stub to the submit GASS server
// and returns its URL, exercising real stage-in.
func (g *testGrid) stageProgram(t *testing.T, name string) string {
	t.Helper()
	u := g.gassS.URLFor("bin/" + name)
	if err := g.gassC.WriteFile(u, Program(name)); err != nil {
		t.Fatal(err)
	}
	return u.String()
}

func (g *testGrid) submitAndCommit(t *testing.T, spec JobSpec) JobContact {
	t.Helper()
	contact, err := g.client.Submit(g.site.GatekeeperAddr(), spec, SubmitOptions{SubmissionID: NewSubmissionID()})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.client.Commit(contact); err != nil {
		t.Fatal(err)
	}
	return contact
}

func waitGramState(t *testing.T, c *Client, contact JobContact, want JobState) StatusInfo {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	var last StatusInfo
	for time.Now().Before(deadline) {
		st, err := c.Status(contact)
		if err == nil {
			last = st
			if st.State == want {
				return st
			}
			if st.State.Terminal() && st.State != want {
				t.Fatalf("job %s reached %v (err=%q), want %v", contact.JobID, st.State, st.Error, want)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (last %v err=%q)", contact.JobID, want, last.State, last.Error)
	return StatusInfo{}
}

func TestFullJobLifecycle(t *testing.T) {
	g := newTestGrid(t)
	stdout := g.gassS.URLFor("jobs/1/stdout")
	spec := JobSpec{
		Executable: g.stageProgram(t, "echo"),
		Args:       []string{"hello", "grid"},
		StdoutURL:  stdout.String(),
	}
	contact := g.submitAndCommit(t, spec)
	st := waitGramState(t, g.client, contact, StateDone)
	if !st.ExitOK {
		t.Fatal("ExitOK false for successful job")
	}
	// Output was streamed back to the submission machine.
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, err := g.gassC.ReadAll(stdout)
		if err == nil && string(data) == "hello grid\n" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout = %q, want %q", data, "hello grid\n")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStdinStaging(t *testing.T) {
	g := newTestGrid(t)
	stdin := g.gassS.URLFor("jobs/2/stdin")
	if err := g.gassC.WriteFile(stdin, []byte("input-bytes")); err != nil {
		t.Fatal(err)
	}
	stdout := g.gassS.URLFor("jobs/2/stdout")
	contact := g.submitAndCommit(t, JobSpec{
		Executable: g.stageProgram(t, "cat"),
		Stdin:      stdin.String(),
		StdoutURL:  stdout.String(),
	})
	waitGramState(t, g.client, contact, StateDone)
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, _ := g.gassC.ReadAll(stdout)
		if string(data) == "input-bytes" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout = %q", data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFailedJobReportsStderr(t *testing.T) {
	g := newTestGrid(t)
	stderr := g.gassS.URLFor("jobs/3/stderr")
	contact := g.submitAndCommit(t, JobSpec{
		Executable: g.stageProgram(t, "fail"),
		StderrURL:  stderr.String(),
	})
	st := waitGramState(t, g.client, contact, StateFailed)
	if st.ExitOK {
		t.Fatal("ExitOK true for failed job")
	}
	if !strings.Contains(st.Error, "exit 1") {
		t.Fatalf("error = %q", st.Error)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, _ := g.gassC.ReadAll(stderr)
		if strings.Contains(string(data), "something broke") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stderr = %q", data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStageInFailure(t *testing.T) {
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{
		Executable: "gass://" + g.gassS.Addr() + "/no/such/program",
	})
	st := waitGramState(t, g.client, contact, StateFailed)
	if !strings.Contains(st.Error, "stage-in") {
		t.Fatalf("error = %q, want stage-in failure", st.Error)
	}
}

func TestCancel(t *testing.T) {
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{
		Executable: g.stageProgram(t, "sleep"),
		Args:       []string{"10s"},
	})
	waitGramState(t, g.client, contact, StateActive)
	if err := g.client.Cancel(contact); err != nil {
		t.Fatal(err)
	}
	waitGramState(t, g.client, contact, StateFailed)
	// Cancel after terminal is idempotent.
	if err := g.client.Cancel(contact); err != nil {
		t.Fatal(err)
	}
}

func TestUncommittedSubmissionExpires(t *testing.T) {
	g := newTestGrid(t)
	g.site.cfg.CommitTimeout = 50 * time.Millisecond // already built; adjust via new site instead
	// Build a dedicated site with a short commit timeout.
	cluster, _ := lrm.NewCluster(lrm.Config{Name: "s2", Cpus: 1})
	site, err := NewSite(SiteConfig{
		Name: "short", Cluster: cluster, Runtime: testRuntime(),
		StateDir: t.TempDir(), CommitTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	contact, err := g.client.Submit(site.GatekeeperAddr(), JobSpec{Executable: g.stageProgram(t, "echo")}, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := g.client.Commit(contact); err == nil {
		t.Fatal("commit after expiry succeeded")
	}
}

func TestCommitIdempotent(t *testing.T) {
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{Executable: g.stageProgram(t, "echo")})
	for i := 0; i < 3; i++ {
		if err := g.client.Commit(contact); err != nil {
			t.Fatalf("repeat commit %d: %v", i, err)
		}
	}
	waitGramState(t, g.client, contact, StateDone)
}

func TestExactlyOnceUnderLostResponses(t *testing.T) {
	// The §3.2 two-phase commit experiment: the submit response is lost
	// twice; the client retries with the same sequence number; exactly
	// one job is created.
	faults := &wire.Faults{}
	g := newTestGrid(t, func(cfg *SiteConfig) { cfg.GatekeeperFaults = faults })
	var drops atomic.Int64
	faults.Set(nil, func(method string) bool {
		return method == "gram.submit" && drops.Add(1) <= 2
	})
	contact, err := g.client.Submit(g.site.GatekeeperAddr(), JobSpec{
		Executable: g.stageProgram(t, "echo"),
	}, SubmitOptions{SubmissionID: NewSubmissionID()})
	if err != nil {
		t.Fatal(err)
	}
	faults.Set(nil, nil)
	if err := g.client.Commit(contact); err != nil {
		t.Fatal(err)
	}
	waitGramState(t, g.client, contact, StateDone)
	g.site.mu.Lock()
	n := len(g.site.jobs)
	g.site.mu.Unlock()
	if n != 1 {
		t.Fatalf("site has %d jobs, want exactly 1", n)
	}
}

func TestSubmissionIDDeduplicatesAcrossConnections(t *testing.T) {
	// Even a brand-new client (fresh wire sequence space, e.g. after a
	// submit-machine reboot) must not duplicate a journaled submission.
	g := newTestGrid(t)
	subID := NewSubmissionID()
	spec := JobSpec{Executable: g.stageProgram(t, "echo")}
	c1, err := g.client.Submit(g.site.GatekeeperAddr(), spec, SubmitOptions{SubmissionID: subID})
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewClient(nil, nil)
	fresh.SetTimeouts(300*time.Millisecond, 3)
	defer fresh.Close()
	c2, err := fresh.Submit(g.site.GatekeeperAddr(), spec, SubmitOptions{SubmissionID: subID})
	if err != nil {
		t.Fatal(err)
	}
	if c1.JobID != c2.JobID {
		t.Fatalf("duplicate submission created new job: %s vs %s", c1.JobID, c2.JobID)
	}
}

func TestJobManagerCrashAndRestart(t *testing.T) {
	// Failure type 1 (§4.2): the JobManager dies; the LRM job survives;
	// the GridManager detects the dead JM via ping, confirms the
	// Gatekeeper is alive, and requests a restart.
	g := newTestGrid(t)
	stdout := g.gassS.URLFor("jobs/jm/stdout")
	contact := g.submitAndCommit(t, JobSpec{
		Executable: g.stageProgram(t, "sleep"),
		Args:       []string{"300ms"},
		StdoutURL:  stdout.String(),
	})
	waitGramState(t, g.client, contact, StateActive)
	if err := g.site.CrashJobManager(contact.JobID); err != nil {
		t.Fatal(err)
	}
	if err := g.client.PingJobManager(contact); err == nil {
		t.Fatal("ping of crashed JobManager succeeded")
	}
	if err := g.client.PingGatekeeper(contact.GatekeeperAddr); err != nil {
		t.Fatalf("gatekeeper should be alive: %v", err)
	}
	newContact, err := g.client.RestartJobManager(contact)
	if err != nil {
		t.Fatal(err)
	}
	if newContact.JobManagerAddr == contact.JobManagerAddr {
		t.Fatal("restart returned the dead JobManager address")
	}
	st := waitGramState(t, g.client, newContact, StateDone)
	if !st.ExitOK {
		t.Fatal("job lost by JobManager crash")
	}
	// Output still arrives via the new JobManager's push loop.
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, _ := g.gassC.ReadAll(stdout)
		if strings.Contains(string(data), "slept") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout after JM restart = %q", data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatekeeperMachineCrashAndRestart(t *testing.T) {
	// Failure type 2 (§4.2): the whole interface machine dies. The LRM
	// job keeps running. After restart, a new JobManager reports the
	// completed job.
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{
		Executable: g.stageProgram(t, "sleep"),
		Args:       []string{"100ms"},
	})
	waitGramState(t, g.client, contact, StateActive)
	g.site.CrashGatekeeperMachine()
	if err := g.client.PingJobManager(contact); err == nil {
		t.Fatal("JM alive after machine crash")
	}
	if err := g.client.PingGatekeeper(contact.GatekeeperAddr); err == nil {
		t.Fatal("gatekeeper alive after machine crash")
	}
	time.Sleep(150 * time.Millisecond) // job finishes while machine is down
	if err := g.site.RestartGatekeeperMachine(); err != nil {
		t.Fatal(err)
	}
	if err := g.client.PingGatekeeper(contact.GatekeeperAddr); err != nil {
		t.Fatalf("gatekeeper not back on old address: %v", err)
	}
	newContact, err := g.client.RestartJobManager(contact)
	if err != nil {
		t.Fatal(err)
	}
	st := waitGramState(t, g.client, newContact, StateDone)
	if !st.ExitOK {
		t.Fatalf("job lost across machine crash: %+v", st)
	}
}

func TestNetworkPartitionAndHeal(t *testing.T) {
	// Failure type 4 (§4.2): partition. The client cannot tell a crash
	// from a partition; it waits and reconnects when the network heals.
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{
		Executable: g.stageProgram(t, "sleep"),
		Args:       []string{"100ms"},
	})
	waitGramState(t, g.client, contact, StateActive)
	g.site.Partition()
	if err := g.client.PingJobManager(contact); err == nil {
		t.Fatal("JM reachable during partition")
	}
	if err := g.client.PingGatekeeper(contact.GatekeeperAddr); err == nil {
		t.Fatal("gatekeeper reachable during partition")
	}
	time.Sleep(150 * time.Millisecond)
	g.site.Heal()
	// JobManager survived (it exists server-side; only the network was
	// down), so a plain reconnect finds the finished job.
	st := waitGramState(t, g.client, contact, StateDone)
	if !st.ExitOK {
		t.Fatalf("job lost across partition: %+v", st)
	}
}

func TestGSIAuthorizationPath(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	gm := gsi.NewGridmap(map[string]string{"/O=Grid/CN=jfrey": "jfrey"})
	g := newTestGrid(t, func(cfg *SiteConfig) {
		cfg.Anchor = ca.Certificate()
		cfg.Gridmap = gm
	})
	user, _ := ca.IssueUser("/O=Grid/CN=jfrey", now, 24*time.Hour)
	proxy, _ := gsi.NewProxy(user, now, time.Hour)
	authed := NewClient(proxy, nil)
	authed.SetTimeouts(300*time.Millisecond, 3)
	defer authed.Close()

	contact, err := authed.Submit(g.site.GatekeeperAddr(), JobSpec{
		Executable: string(Program("echo")), // inline program, no staging
		Args:       []string{"ok"},
	}, SubmitOptions{SubmissionID: NewSubmissionID(), Delegate: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := authed.Commit(contact); err != nil {
		t.Fatal(err)
	}
	st := waitGramState(t, authed, contact, StateDone)
	if st.LocalUser != "jfrey" {
		t.Fatalf("gridmap mapped to %q, want jfrey", st.LocalUser)
	}

	// An unmapped (but authenticated) user is refused.
	other, _ := ca.IssueUser("/O=Grid/CN=stranger", now, 24*time.Hour)
	stranger := NewClient(other, nil)
	stranger.SetTimeouts(300*time.Millisecond, 1)
	defer stranger.Close()
	if _, err := stranger.Submit(g.site.GatekeeperAddr(), JobSpec{Executable: "x"}, SubmitOptions{}); err == nil {
		t.Fatal("unmapped subject submitted a job")
	}

	// Another mapped user cannot poke jfrey's job.
	gm.Add("/O=Grid/CN=other", "other")
	cred2, _ := ca.IssueUser("/O=Grid/CN=other", now, 24*time.Hour)
	otherClient := NewClient(cred2, nil)
	otherClient.SetTimeouts(300*time.Millisecond, 1)
	defer otherClient.Close()
	if _, err := otherClient.Status(contact); err == nil {
		t.Fatal("foreign subject read job status")
	}
	if err := otherClient.Cancel(contact); err == nil {
		t.Fatal("foreign subject cancelled job")
	}
}

func TestCredentialRefreshReForward(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 48*time.Hour)
	g := newTestGrid(t, func(cfg *SiteConfig) { cfg.Anchor = ca.Certificate() })
	user, _ := ca.IssueUser("/O=Grid/CN=u", now, 24*time.Hour)
	proxy, _ := gsi.NewProxy(user, now, time.Hour)
	c := NewClient(proxy, nil)
	c.SetTimeouts(300*time.Millisecond, 3)
	defer c.Close()
	contact, err := c.Submit(g.site.GatekeeperAddr(), JobSpec{
		Executable: string(Program("sleep")), Args: []string{"200ms"},
	}, SubmitOptions{SubmissionID: NewSubmissionID(), Delegate: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(contact); err != nil {
		t.Fatal(err)
	}
	// Refresh locally with a longer-lived proxy and re-forward to the site.
	fresh, _ := gsi.NewProxy(user, now, 3*time.Hour)
	c.SetCredential(fresh)
	if err := c.RefreshCredential(contact, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	waitGramState(t, c, contact, StateDone)
	// The site now holds a credential derived from the fresh proxy: its
	// lifetime exceeds the original 1h delegation.
	g.site.mu.Lock()
	job := g.site.jobs[contact.JobID]
	g.site.mu.Unlock()
	job.mu.Lock()
	left := job.cred.TimeLeft(now)
	job.mu.Unlock()
	if left < 90*time.Minute {
		t.Fatalf("site credential lifetime %v, want ~2h after re-forward", left)
	}
}

func TestURLFileUpdateAfterSubmitMachineRestart(t *testing.T) {
	g := newTestGrid(t)
	urlFile := filepath.Join(t.TempDir(), "gass.url")
	stdout := g.gassS.URLFor("jobs/mv/stdout")
	contact := g.submitAndCommit(t, JobSpec{
		Executable:  g.stageProgram(t, "sleep"),
		Args:        []string{"250ms"},
		StdoutURL:   stdout.String(),
		GassURLFile: urlFile,
	})
	waitGramState(t, g.client, contact, StateActive)

	// "Restart" the submit-side GASS server on a new port.
	root := g.gassS.Root()
	g.gassS.Close()
	gs2, err := gass.NewServer(root, gass.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer gs2.Close()
	if err := g.client.UpdateURLFile(contact, gs2.Addr()); err != nil {
		t.Fatal(err)
	}
	got, err := gass.ReadURLFile(urlFile)
	if err != nil || got != gs2.Addr() {
		t.Fatalf("URL file = %q err=%v, want %q", got, err, gs2.Addr())
	}
	waitGramState(t, g.client, contact, StateDone)
	// Output flowed to the NEW server.
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, _ := g.gassC.ReadAll(gass.URL{Addr: gs2.Addr(), Path: "jobs/mv/stdout"})
		if strings.Contains(string(data), "slept") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stdout after GASS move = %q", data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProgramNameParsing(t *testing.T) {
	if _, err := ProgramName([]byte("#!/bin/sh\n")); err == nil {
		t.Fatal("non-condor executable accepted")
	}
	name, err := ProgramName(Program("mw-worker"))
	if err != nil || name != "mw-worker" {
		t.Fatalf("name=%q err=%v", name, err)
	}
}

func TestRuntimeUnknownProgram(t *testing.T) {
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{Executable: string(Program("nonexistent"))})
	st := waitGramState(t, g.client, contact, StateFailed)
	if !strings.Contains(st.Error, "no such program") {
		t.Fatalf("error = %q", st.Error)
	}
}

// TestFaultClassTravelsOverWire: the typed fault taxonomy must survive the
// wire round trip so callers can branch on StatusInfo.Fault (or the class
// attached to a remote error) instead of matching error prose. A program
// failure is Permanent; asking a site about a job it has never heard of is
// SiteLost.
func TestFaultClassTravelsOverWire(t *testing.T) {
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{
		Executable: g.stageProgram(t, "fail"),
	})
	st := waitGramState(t, g.client, contact, StateFailed)
	if st.Fault != faultclass.Permanent {
		t.Fatalf("fault = %v, want %v", st.Fault, faultclass.Permanent)
	}

	ghost := contact
	ghost.JobID = "wisc-job999"
	if _, err := g.client.RestartJobManager(ghost); err == nil {
		t.Fatal("restart of an unknown job succeeded")
	} else if !wire.IsRemote(err) {
		t.Fatalf("err = %v, want a remote error", err)
	} else if got := faultclass.ClassOf(err); got != faultclass.SiteLost {
		t.Fatalf("fault class = %v, want %v", got, faultclass.SiteLost)
	}
}
