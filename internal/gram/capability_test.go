package gram

import (
	"testing"
	"time"

	"condorg/internal/gsi"
	"condorg/internal/lrm"
)

// TestCapabilityAuthorizedSubmission exercises the §3.2 capability
// extension end to end: a subject with no gridmap entry submits
// successfully by presenting a grant signed by the site administrator.
func TestCapabilityAuthorizedSubmission(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	admin, _ := ca.IssueUser("/O=Grid/CN=site-admin", now, 24*time.Hour)
	gridmap := gsi.NewGridmap(map[string]string{}) // nobody is mapped

	cluster, _ := lrm.NewCluster(lrm.Config{Name: "cap", Cpus: 2})
	site, err := NewSite(SiteConfig{
		Name:             "cap",
		Anchor:           ca.Certificate(),
		Gridmap:          gridmap,
		CapabilityIssuer: admin.Leaf(),
		Cluster:          cluster,
		Runtime:          testRuntime(),
		StateDir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	visitor, _ := ca.IssueUser("/O=Grid/CN=visitor", now, 24*time.Hour)
	client := NewClient(visitor, nil)
	client.SetTimeouts(300*time.Millisecond, 2)
	defer client.Close()

	// Without a capability: refused (not in the gridmap).
	if _, err := client.Submit(site.GatekeeperAddr(), JobSpec{
		Executable: string(Program("echo")),
	}, SubmitOptions{SubmissionID: NewSubmissionID()}); err == nil {
		t.Fatal("unmapped subject submitted without a capability")
	}

	// With an admin-signed capability: authorized, mapped to "guest01".
	cap, err := gsi.IssueCapability(admin, "/O=Grid/CN=visitor", "guest01",
		[]string{"gram:submit"}, now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	contact, err := client.Submit(site.GatekeeperAddr(), JobSpec{
		Executable: string(Program("echo")),
		Args:       []string{"capability", "works"},
	}, SubmitOptions{SubmissionID: NewSubmissionID(), Capability: cap})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Commit(contact); err != nil {
		t.Fatal(err)
	}
	st := waitGramState(t, client, contact, StateDone)
	if st.LocalUser != "guest01" {
		t.Fatalf("capability mapped to %q, want guest01", st.LocalUser)
	}
}

func TestCapabilityFromWrongIssuerRefused(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	admin, _ := ca.IssueUser("/O=Grid/CN=site-admin", now, 24*time.Hour)
	mallory, _ := ca.IssueUser("/O=Grid/CN=mallory", now, 24*time.Hour)

	cluster, _ := lrm.NewCluster(lrm.Config{Name: "cap2", Cpus: 1})
	site, err := NewSite(SiteConfig{
		Name:             "cap2",
		Anchor:           ca.Certificate(),
		Gridmap:          gsi.NewGridmap(map[string]string{}),
		CapabilityIssuer: admin.Leaf(),
		Cluster:          cluster,
		Runtime:          testRuntime(),
		StateDir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	visitor, _ := ca.IssueUser("/O=Grid/CN=visitor", now, 24*time.Hour)
	client := NewClient(visitor, nil)
	client.SetTimeouts(300*time.Millisecond, 1)
	defer client.Close()

	// Mallory signs herself a capability for the visitor; the site pins
	// the admin's certificate, so this is refused.
	forged, _ := gsi.IssueCapability(mallory, "/O=Grid/CN=visitor", "root",
		[]string{"gram:submit"}, now, time.Hour)
	if _, err := client.Submit(site.GatekeeperAddr(), JobSpec{
		Executable: string(Program("echo")),
	}, SubmitOptions{SubmissionID: NewSubmissionID(), Capability: forged}); err == nil {
		t.Fatal("capability from untrusted issuer accepted")
	}
}
