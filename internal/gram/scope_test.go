package gram

import (
	"strings"
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

// newScopedPair brings up two authenticated sites sharing one CA and
// gridmap, plus a client for the mapped user.
func newScopedPair(t *testing.T) (siteA, siteB *Site, user *gsi.Credential, client *Client) {
	t.Helper()
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", now, 48*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gm := gsi.NewGridmap(map[string]string{"/O=Grid/CN=jfrey": "jfrey"})
	mkSite := func(name string) *Site {
		cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSite(SiteConfig{
			Name:          name,
			Anchor:        ca.Certificate(),
			Gridmap:       gm,
			Cluster:       cluster,
			Runtime:       testRuntime(),
			StateDir:      t.TempDir(),
			CommitTimeout: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	siteA, siteB = mkSite("alpha"), mkSite("beta")
	userCred, err := ca.IssueUser("/O=Grid/CN=jfrey", now, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := gsi.NewProxy(userCred, now, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	client = NewClient(proxy, nil)
	client.SetTimeouts(300*time.Millisecond, 3)
	t.Cleanup(client.Close)
	return siteA, siteB, proxy, client
}

// A proxy the client delegated for site A, replayed (as site A could) in a
// submission to site B, must be refused with a typed Permanent fault — the
// mediated-delegation guarantee that a compromised site cannot reuse the
// proxies it holds anywhere else on the grid.
func TestWrongSiteScopedProxyRejectedOnSubmit(t *testing.T) {
	siteA, siteB, proxy, client := newScopedPair(t)

	// The normal path still works: Submit scopes to the site it targets.
	contact, err := client.Submit(siteA.GatekeeperAddr(), JobSpec{
		Executable: string(Program("echo")), Args: []string{"ok"},
	}, SubmitOptions{SubmissionID: NewSubmissionID(), Delegate: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Commit(contact); err != nil {
		t.Fatal(err)
	}
	waitGramState(t, client, contact, StateDone)

	// Replay: a delegation minted for site A presented at site B.
	forA, err := gsi.DelegateScoped(proxy, siteA.GatekeeperAddr(), time.Now(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	data, err := gsi.EncodeCredential(forA)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.Dial(siteB.GatekeeperAddr(), wire.ClientConfig{
		ServerName: GatekeeperService,
		Credential: proxy,
		Timeout:    300 * time.Millisecond,
		Retries:    1,
	})
	defer wc.Close()
	var resp submitResp
	err = wc.Call("gram.submit", submitReq{
		SubmissionID: NewSubmissionID(),
		Spec:         JobSpec{Executable: string(Program("echo"))},
		Delegated:    data,
	}, &resp)
	if err == nil {
		t.Fatal("site B accepted a proxy delegated to site A")
	}
	if got := faultclass.ClassOf(err); got != faultclass.Permanent {
		t.Fatalf("wrong-site submit fault class = %v (%v), want Permanent", got, err)
	}
	if !strings.Contains(err.Error(), "scoped") {
		t.Fatalf("error does not name the scope violation: %v", err)
	}
}

// The in-band refresh verb applies the same vetting: a JobManager only
// accepts a renewed proxy that is scoped to its own site.
func TestWrongSiteScopedProxyRejectedOnRefresh(t *testing.T) {
	siteA, siteB, proxy, client := newScopedPair(t)

	contact, err := client.Submit(siteA.GatekeeperAddr(), JobSpec{
		Executable: string(Program("sleep")), Args: []string{"300ms"},
	}, SubmitOptions{SubmissionID: NewSubmissionID(), Delegate: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Commit(contact); err != nil {
		t.Fatal(err)
	}

	// A refresh payload scoped to site B, pushed at site A's JobManager.
	forB, err := gsi.DelegateScoped(proxy, siteB.GatekeeperAddr(), time.Now(), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	data, err := gsi.EncodeCredential(forB)
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.Dial(contact.JobManagerAddr, wire.ClientConfig{
		ServerName: JobManagerService,
		Credential: proxy,
		Timeout:    300 * time.Millisecond,
		Retries:    1,
	})
	defer wc.Close()
	err = wc.Call("jm.refresh-credential", refreshCredReq{Delegated: data}, nil)
	if err == nil {
		t.Fatal("JobManager accepted a refresh scoped to another site")
	}
	if got := faultclass.ClassOf(err); got != faultclass.Permanent {
		t.Fatalf("wrong-site refresh fault class = %v (%v), want Permanent", got, err)
	}

	// The correctly scoped refresh path still succeeds in-band.
	if err := client.RefreshCredential(contact, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	waitGramState(t, client, contact, StateDone)
}
