package gram

import (
	"testing"
	"time"

	"condorg/internal/faultclass"
	"condorg/internal/wire"
)

// One batch-submit + one batch-commit must carry N jobs through the
// two-phase commit, in order, and every job must run to completion.
func TestBatchSubmitCommitRoundTrip(t *testing.T) {
	g := newTestGrid(t)
	exe := g.stageProgram(t, "echo")
	const n = 5
	entries := make([]BatchSubmitEntry, n)
	for i := range entries {
		entries[i] = BatchSubmitEntry{
			Spec: JobSpec{Executable: exe},
			Opts: SubmitOptions{SubmissionID: NewSubmissionID()},
		}
	}
	gk := g.site.GatekeeperAddr()
	results, err := g.client.BatchSubmit(gk, entries)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, n)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("entry %d: %v", i, r.Err)
		}
		if r.Contact.JobID == "" || r.Contact.GatekeeperAddr != gk {
			t.Fatalf("entry %d: bad contact %+v", i, r.Contact)
		}
		ids[i] = r.Contact.JobID
	}
	cerrs, err := g.client.BatchCommit(gk, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range cerrs {
		if e != nil {
			t.Fatalf("commit entry %d: %v", i, e)
		}
	}
	deadline := time.Now().Add(8 * time.Second)
	for {
		sts, err := g.client.BatchStatus(gk, ids)
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		for i, st := range sts {
			if st.Err != nil {
				t.Fatalf("status entry %d: %v", i, st.Err)
			}
			if st.Status.State == StateFailed {
				t.Fatalf("job %d failed: %s", i, st.Status.Error)
			}
			if st.Status.State == StateDone {
				done++
			}
		}
		if done == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs done", done, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// One bad entry must not fail the batch: the unknown job gets a SiteLost
// per-entry error while its neighbours get real statuses.
func TestBatchPerEntryIsolation(t *testing.T) {
	g := newTestGrid(t)
	contact := g.submitAndCommit(t, JobSpec{Executable: g.stageProgram(t, "echo")})
	gk := g.site.GatekeeperAddr()

	sts, err := g.client.BatchStatus(gk, []string{contact.JobID, "no-such-job"})
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].Err != nil {
		t.Fatalf("known job errored: %v", sts[0].Err)
	}
	if sts[1].Err == nil || faultclass.ClassOf(sts[1].Err) != faultclass.SiteLost {
		t.Fatalf("unknown job: want SiteLost, got %v", sts[1].Err)
	}

	cerrs, err := g.client.BatchCancel(gk, []string{"also-missing", contact.JobID})
	if err != nil {
		t.Fatal(err)
	}
	if cerrs[0] == nil || faultclass.ClassOf(cerrs[0]) != faultclass.SiteLost {
		t.Fatalf("unknown cancel: want SiteLost, got %v", cerrs[0])
	}
	if cerrs[1] != nil {
		t.Fatalf("known cancel: %v", cerrs[1])
	}
}

// SubmissionID dedup must hold inside one batch frame exactly as it does
// across retried single submits: the duplicate entry resolves to the same
// site job instead of a second copy.
func TestBatchSubmitDedupInBatch(t *testing.T) {
	g := newTestGrid(t)
	exe := g.stageProgram(t, "echo")
	subID := NewSubmissionID()
	entries := []BatchSubmitEntry{
		{Spec: JobSpec{Executable: exe}, Opts: SubmitOptions{SubmissionID: subID}},
		{Spec: JobSpec{Executable: exe}, Opts: SubmitOptions{SubmissionID: subID}},
	}
	results, err := g.client.BatchSubmit(g.site.GatekeeperAddr(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("errs: %v / %v", results[0].Err, results[1].Err)
	}
	if results[0].Contact.JobID != results[1].Contact.JobID {
		t.Fatalf("duplicate SubmissionID created two jobs: %s / %s",
			results[0].Contact.JobID, results[1].Contact.JobID)
	}
}

// Against a gatekeeper that predates the batch verbs the whole call must
// come back "no such method" and the client must remember the verdict so
// callers stop offering batches to that address.
func TestBatchLegacyGatekeeperFallback(t *testing.T) {
	srv, err := wire.NewServer(wire.ServerConfig{Name: GatekeeperService})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(nil, nil)
	c.SetTimeouts(300*time.Millisecond, 1)
	defer c.Close()
	addr := srv.Addr()
	if !c.BatchSupported(addr) {
		t.Fatal("fresh address should be optimistically batch-capable")
	}
	_, err = c.BatchStatus(addr, []string{"j1"})
	if !wire.IsNoSuchMethod(err) {
		t.Fatalf("want no-such-method, got %v", err)
	}
	if c.BatchSupported(addr) {
		t.Fatal("legacy verdict not remembered")
	}
}

// Batch cancel must actually kill running jobs.
func TestBatchCancelKillsJobs(t *testing.T) {
	g := newTestGrid(t)
	exe := g.stageProgram(t, "sleep")
	gk := g.site.GatekeeperAddr()
	var ids []string
	for i := 0; i < 3; i++ {
		contact := g.submitAndCommit(t, JobSpec{Executable: exe, Args: []string{"30s"}})
		waitGramState(t, g.client, contact, StateActive)
		ids = append(ids, contact.JobID)
	}
	cerrs, err := g.client.BatchCancel(gk, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range cerrs {
		if e != nil {
			t.Fatalf("cancel %d: %v", i, e)
		}
	}
	deadline := time.Now().Add(8 * time.Second)
	for {
		sts, err := g.client.BatchStatus(gk, ids)
		if err != nil {
			t.Fatal(err)
		}
		terminal := 0
		for _, st := range sts {
			if st.Err == nil && st.Status.State.Terminal() {
				terminal++
			}
		}
		if terminal == len(ids) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs terminal after batch cancel", terminal, len(ids))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
