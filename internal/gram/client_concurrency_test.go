package gram

import (
	"fmt"
	"testing"
	"time"
)

// TestClientConcurrentCalls drives one shared Client from many goroutines
// against a single site — the access pattern of the agent's per-site
// pipeline workers, which all funnel through the owner's one Client and
// its cached gatekeeper/jobmanager connections. Run under -race this
// pins down the connection-cache and breaker locking.
func TestClientConcurrentCalls(t *testing.T) {
	g := newTestGrid(t)
	exe := g.stageProgram(t, "echo")
	const n = 8
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			contact, err := g.client.Submit(g.site.GatekeeperAddr(),
				JobSpec{Executable: exe}, SubmitOptions{SubmissionID: NewSubmissionID()})
			if err != nil {
				errCh <- fmt.Errorf("submit: %w", err)
				return
			}
			if err := g.client.Commit(contact); err != nil {
				errCh <- fmt.Errorf("commit: %w", err)
				return
			}
			deadline := time.Now().Add(8 * time.Second)
			for {
				st, err := g.client.Status(contact)
				if err == nil && st.State == StateDone {
					errCh <- nil
					return
				}
				if err == nil && st.State.Terminal() {
					errCh <- fmt.Errorf("job %s ended %v: %s", contact.JobID, st.State, st.Error)
					return
				}
				if time.Now().After(deadline) {
					errCh <- fmt.Errorf("job %s never finished (last err: %v)", contact.JobID, err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}
