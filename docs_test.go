package benchmarks

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestOperationsDocMatchesCLI guards docs/OPERATIONS.md against flag
// drift: every `-flag` the operator guide documents must actually be
// registered in cmd/condorg/main.go. Go-tool flags mentioned in repro
// commands (go test -race, -bench, ...) are exempt.
func TestOperationsDocMatchesCLI(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("cmd/condorg/main.go")
	if err != nil {
		t.Fatal(err)
	}

	goToolFlags := map[string]bool{
		"race": true, "v": true, "run": true, "bench": true,
		"benchtime": true, "o": true,
	}

	flags := map[string]bool{}
	// Inline and table mentions: `-stage-streams`
	for _, m := range regexp.MustCompile("`-([a-z][a-z0-9-]*)`").FindAllStringSubmatch(string(doc), -1) {
		flags[m[1]] = true
	}
	// Command lines in fenced blocks: bin/condorg q -agent ... -limit 20
	argRe := regexp.MustCompile(`\s-([a-z][a-z0-9-]*)`)
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.Contains(line, "condorg ") {
			continue
		}
		for _, m := range argRe.FindAllStringSubmatch(line, -1) {
			flags[m[1]] = true
		}
	}
	if len(flags) < 12 {
		t.Fatalf("only found %d documented flags — did the doc format change?", len(flags))
	}

	for name := range flags {
		if goToolFlags[name] {
			continue
		}
		// Flag registrations look like fs.String("listen", ...).
		reg := fmt.Sprintf("(%q,", name)
		if !strings.Contains(string(src), reg) {
			t.Errorf("docs/OPERATIONS.md documents -%s but cmd/condorg/main.go does not register it", name)
		}
	}
}

// TestWireFlagsDocumented guards the reverse direction for the wire-v2
// serve flags: each must be registered by the CLI *and* documented in the
// operator guide (the generic test above only catches doc→CLI drift).
func TestWireFlagsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("cmd/condorg/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"batch-max-jobs", "batch-max-delay", "wire-codec"} {
		if !strings.Contains(string(src), fmt.Sprintf("(%q,", name)) {
			t.Errorf("cmd/condorg/main.go does not register -%s", name)
		}
		if !strings.Contains(string(doc), "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document -%s", name)
		}
	}
	// And the design doc must keep describing the protocol they configure.
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(design), "Wire protocol v2") {
		t.Error("DESIGN.md lost its Wire protocol v2 section")
	}
}

// TestHAFlagsDocumented guards the HA/standby surface the same way: the
// serve flags and the audit subcommand must be registered by the CLI and
// documented in the operator guide, and the design doc must keep the
// section describing the journal chain they rely on.
func TestHAFlagsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("cmd/condorg/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ha", "standby", "lease-ttl", "standby-poll"} {
		if !strings.Contains(string(src), fmt.Sprintf("(%q,", name)) {
			t.Errorf("cmd/condorg/main.go does not register -%s", name)
		}
		if !strings.Contains(string(doc), "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document -%s", name)
		}
	}
	if !strings.Contains(string(src), `case "audit":`) {
		t.Error("cmd/condorg/main.go lost the audit subcommand")
	}
	if !strings.Contains(string(doc), "condorg audit verify") {
		t.Error("docs/OPERATIONS.md does not document `condorg audit verify`")
	}
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(design), "Verifiable journal & hot-standby failover") {
		t.Error("DESIGN.md lost its verifiable journal / failover section")
	}
}

// TestTenancyFlagsDocumented guards the multi-tenant surface: the serve
// tenancy flags and the gateway subcommand must be registered by the CLI
// and documented in the operator guide, and the design doc must keep the
// tenancy-model section describing the semantics they configure.
func TestTenancyFlagsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("cmd/condorg/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"journal-partitions", "max-queued-per-owner", "max-active-per-owner",
		"submit-rate", "submit-burst", "max-payload-bytes", "users",
	} {
		if !strings.Contains(string(src), fmt.Sprintf("(%q,", name)) {
			t.Errorf("cmd/condorg/main.go does not register -%s", name)
		}
		if !strings.Contains(string(doc), "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document -%s", name)
		}
	}
	if !strings.Contains(string(src), `case "gateway":`) {
		t.Error("cmd/condorg/main.go lost the gateway subcommand")
	}
	if !strings.Contains(string(doc), "condorg gateway") {
		t.Error("docs/OPERATIONS.md does not document `condorg gateway`")
	}
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(design), "Tenancy model") {
		t.Error("DESIGN.md lost its tenancy-model section")
	}
}

// TestGlideinFlagsDocumented guards the elastic-autoscaler surface: the
// serve glidein flags and the pool subcommand must be registered by the
// CLI and documented in the operator guide, and the design doc must keep
// the elastic-provisioning section describing the semantics they
// configure.
func TestGlideinFlagsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("cmd/condorg/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"glidein", "glidein-min", "glidein-max", "glidein-jobs-per-pilot",
		"glidein-lease", "glidein-idle", "glidein-interval", "glidein-cpus",
	} {
		if !strings.Contains(string(src), fmt.Sprintf("(%q,", name)) {
			t.Errorf("cmd/condorg/main.go does not register -%s", name)
		}
		if !strings.Contains(string(doc), "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document -%s", name)
		}
	}
	if !strings.Contains(string(src), `case "pool":`) {
		t.Error("cmd/condorg/main.go lost the pool subcommand")
	}
	if !strings.Contains(string(doc), "condorg pool") {
		t.Error("docs/OPERATIONS.md does not document `condorg pool`")
	}
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(design), "Elastic provisioning") {
		t.Error("DESIGN.md lost its elastic-provisioning section")
	}
}

// TestCredFlagsDocumented guards the credential-lifecycle surface: the
// serve MyProxy/renewal flags must be registered by the CLI and
// documented in the operator guide, the guide must keep the
// expired-proxy runbook, and the design doc must keep the section
// describing the renewal/re-delegation/scoping semantics they configure.
func TestCredFlagsDocumented(t *testing.T) {
	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("cmd/condorg/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"myproxy", "myproxy-user", "myproxy-pass", "myproxy-users",
		"cred-renew-lead", "cred-renew-jitter", "cred-renew-interval",
		"cred-renew-lifetime",
	} {
		if !strings.Contains(string(src), fmt.Sprintf("(%q,", name)) {
			t.Errorf("cmd/condorg/main.go does not register -%s", name)
		}
		if !strings.Contains(string(doc), "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document -%s", name)
		}
	}
	if !strings.Contains(string(doc), "### Credential lifecycle") {
		t.Error("docs/OPERATIONS.md lost its credential-lifecycle section")
	}
	if !strings.Contains(string(doc), "a proxy expired") {
		t.Error("docs/OPERATIONS.md lost the expired-proxy runbook")
	}
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(design), "Credential lifecycle") {
		t.Error("DESIGN.md lost its credential-lifecycle section")
	}
}

// TestReadmeLinksOperationsDoc: the operator guide is reachable from the
// front page.
func TestReadmeLinksOperationsDoc(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "docs/OPERATIONS.md") {
		t.Fatal("README.md does not link docs/OPERATIONS.md")
	}
}
