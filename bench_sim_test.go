package benchmarks

// Simulation-backed reproductions of the paper's large-scale results
// (Section 4.4, Section 5, and the Section 6 case studies). Each benchmark
// drives the discrete-event grid simulator (internal/sim) — a simulated
// week on thousands of CPUs runs in milliseconds — and reports the same
// quantities the paper reports. See EXPERIMENTS.md for paper-vs-measured.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"condorg/internal/events"
	"condorg/internal/lrm"
	"condorg/internal/sim"
)

var printOnce sync.Map

// once prints a table exactly once per benchmark name across b.N loops.
func once(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
	}
}

// mkLoadedGrid builds numSites heterogeneous sites with background load.
func mkLoadedGrid(eng *events.Engine, numSites int, horizon time.Duration) []*sim.Site {
	var sites []*sim.Site
	for i := 0; i < numSites; i++ {
		cpus := 16 << uint(i%3) // 16, 32, 64
		var policy lrm.Policy = lrm.FIFO{}
		if i%3 == 1 {
			policy = lrm.Backfill{}
		}
		if i%3 == 2 {
			policy = lrm.FairShare{}
		}
		site := sim.NewSite(eng, fmt.Sprintf("site%d", i), cpus, policy)
		// Busier sites early in the list (the static-list trap).
		meanIat := time.Duration(2+i*2) * time.Minute
		sim.BackgroundLoad{
			MeanInterarrival: meanIat,
			MeanDuration:     time.Duration(30+10*i) * time.Minute,
			MaxCpus:          4,
			Until:            horizon,
		}.Start(eng, site)
		sites = append(sites, site)
	}
	return sites
}

func userJobs(n int, dur time.Duration) []sim.JobSpec {
	jobs := make([]sim.JobSpec, n)
	for i := range jobs {
		jobs[i] = sim.JobSpec{
			ID: fmt.Sprintf("user%d", i), Owner: "user", Cpus: 1, Duration: dur,
		}
	}
	return jobs
}

// BenchmarkE6_Brokering — §4.4: resource-selection strategies compared on
// the same loaded grid. The static single-site list suffers queueing; the
// MDS-informed (shortest-queue) and adaptive brokers avoid it.
func BenchmarkE6_Brokering(b *testing.B) {
	type strategy struct {
		name string
		mk   func() sim.SiteChooser
	}
	strategies := []strategy{
		{"static-list", func() sim.SiteChooser { return sim.FirstSite{} }},
		{"round-robin", func() sim.SiteChooser { return &sim.RoundRobin{} }},
		{"mds-broker", func() sim.SiteChooser { return sim.ShortestQueue{} }},
		{"adaptive", func() sim.SiteChooser { return sim.NewAdaptiveWait() }},
	}
	type row struct {
		name     string
		meanWait time.Duration
		maxWait  time.Duration
		makespan time.Duration
	}
	run := func(mk func() sim.SiteChooser) row {
		eng := events.NewEngine(42)
		horizon := 72 * time.Hour
		sites := mkLoadedGrid(eng, 5, horizon)
		// Warm the grid so queues reflect the background load.
		eng.RunUntil(8 * time.Hour)
		m := sim.NewMetrics(eng)
		jobs := userJobs(300, 30*time.Minute)
		chooser := mk()
		// Trickle submissions: one every 2 minutes, as a broker would
		// see them.
		for i, spec := range jobs {
			spec := spec
			eng.At(eng.Now()+time.Duration(i)*2*time.Minute, func() {
				sim.DirectSubmit(eng, sites, chooser, []sim.JobSpec{spec}, m)
			})
		}
		eng.RunUntil(horizon * 4)
		return row{meanWait: m.MeanQueueWait(), maxWait: m.MaxQueueWait(), makespan: m.Makespan()}
	}
	for _, s := range strategies {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var r row
			for i := 0; i < b.N; i++ {
				r = run(s.mk)
			}
			b.ReportMetric(r.meanWait.Minutes(), "mean-wait-min")
			b.ReportMetric(r.maxWait.Minutes(), "max-wait-min")
			b.ReportMetric(r.makespan.Hours(), "makespan-h")
		})
	}
	once("E6", func() {
		fmt.Println("\n=== E6 (§4.4): broker strategy comparison, 5 loaded sites, 300 jobs ===")
		fmt.Printf("%-12s %14s %14s %12s\n", "strategy", "mean-wait", "max-wait", "makespan")
		for _, s := range strategies {
			r := run(s.mk)
			fmt.Printf("%-12s %14s %14s %12s\n", s.name,
				r.meanWait.Round(time.Second), r.maxWait.Round(time.Second),
				r.makespan.Round(time.Minute))
		}
	})
}

// BenchmarkE7_DelayedBinding — §5: "By submitting GlideIns to all remote
// resources capable of serving a job, Condor-G can guarantee optimal
// queuing times": early binding commits a job to one queue; GlideIn
// flooding binds it to the first slot that materializes anywhere.
func BenchmarkE7_DelayedBinding(b *testing.B) {
	type row struct {
		meanWait, maxWait time.Duration
	}
	const jobs = 200
	runDirect := func(chooser sim.SiteChooser) row {
		eng := events.NewEngine(7)
		sites := mkLoadedGrid(eng, 5, 96*time.Hour)
		eng.RunUntil(8 * time.Hour)
		m := sim.NewMetrics(eng)
		sim.DirectSubmit(eng, sites, chooser, userJobs(jobs, 20*time.Minute), m)
		eng.RunUntil(400 * time.Hour)
		return row{m.MeanQueueWait(), m.MaxQueueWait()}
	}
	runGlidein := func() row {
		eng := events.NewEngine(7)
		sites := mkLoadedGrid(eng, 5, 96*time.Hour)
		eng.RunUntil(8 * time.Hour)
		m := sim.NewMetrics(eng)
		pool := sim.NewGlideinPool(eng, m)
		for _, spec := range userJobs(jobs, 20*time.Minute) {
			pool.AddJob(spec)
		}
		for _, s := range sites {
			pool.SubmitPilots(s, 16, 24*time.Hour, time.Hour)
		}
		eng.RunUntil(400 * time.Hour)
		return row{m.MeanQueueWait(), m.MaxQueueWait()}
	}
	b.Run("direct-one-site", func(b *testing.B) {
		var r row
		for i := 0; i < b.N; i++ {
			r = runDirect(sim.FirstSite{})
		}
		b.ReportMetric(r.meanWait.Minutes(), "mean-wait-min")
	})
	b.Run("direct-round-robin", func(b *testing.B) {
		var r row
		for i := 0; i < b.N; i++ {
			r = runDirect(&sim.RoundRobin{})
		}
		b.ReportMetric(r.meanWait.Minutes(), "mean-wait-min")
	})
	b.Run("glidein-flood", func(b *testing.B) {
		var r row
		for i := 0; i < b.N; i++ {
			r = runGlidein()
		}
		b.ReportMetric(r.meanWait.Minutes(), "mean-wait-min")
	})
	once("E7", func() {
		d1 := runDirect(sim.FirstSite{})
		d2 := runDirect(&sim.RoundRobin{})
		g := runGlidein()
		fmt.Println("\n=== E7 (§5): early vs delayed binding, 200 jobs on a busy 5-site grid ===")
		fmt.Printf("%-20s %14s %14s\n", "binding", "mean-wait", "max-wait")
		fmt.Printf("%-20s %14s %14s\n", "direct/one-site", d1.meanWait.Round(time.Second), d1.maxWait.Round(time.Second))
		fmt.Printf("%-20s %14s %14s\n", "direct/round-robin", d2.meanWait.Round(time.Second), d2.maxWait.Round(time.Second))
		fmt.Printf("%-20s %14s %14s\n", "glidein-flood", g.meanWait.Round(time.Second), g.maxWait.Round(time.Second))
	})
}

// e8Result carries the §6.1 headline numbers.
type e8Result struct {
	cpuHours  float64
	avgCpus   float64
	peakCpus  int
	tasksDone int
	days      float64
}

// runE8 simulates the §6.1 campaign: ten sites (eight Condor pools, a PBS
// cluster, an LSF supercomputer; ~2,500 CPUs aggregate), continuous GlideIn
// flooding, and a Master-Worker stream of subtree tasks consumed by
// whatever slots materialize, for a simulated week.
func runE8(seed int64) e8Result { return runE8T(seed, false) }

func runE8T(seed int64, trace bool) e8Result {
	eng := events.NewEngine(seed)
	week := 7 * 24 * time.Hour

	// Ten sites, 2,500 CPUs aggregate, with background competition sized
	// to keep each site ~60% busy with other users' work.
	siteCpus := []int{400, 350, 300, 300, 250, 200, 200, 200, 150, 150} // = 2500
	var sites []*sim.Site
	for i, cpus := range siteCpus {
		// Eight Condor pools (opportunistic: a 1-CPU pilot starts
		// whenever any slot is free, modeled as backfill), one PBS
		// cluster (FIFO), one LSF supercomputer (fair share).
		var policy lrm.Policy = lrm.Backfill{}
		switch {
		case i == 8:
			policy = lrm.FIFO{} // the PBS cluster
		case i == 9:
			policy = lrm.FairShare{} // the LSF supercomputer
		}
		site := sim.NewSite(eng, fmt.Sprintf("site%d", i), cpus, policy)
		// Offered background load = meanDur * E[cpus] / meanIat ≈ 0.6C.
		meanIat := time.Duration(49000/cpus) * time.Second
		sim.BackgroundLoad{
			MeanInterarrival: meanIat,
			MeanDuration:     3 * time.Hour,
			MaxCpus:          4,
			Until:            week,
		}.Start(eng, site)
		sites = append(sites, site)
	}

	m := sim.NewMetrics(eng)
	pool := sim.NewGlideinPool(eng, m)

	// The master generates B&B subtree tasks in bursts — the branch and
	// bound frontier expands and contracts as the incumbent improves —
	// so worker concurrency oscillates between a high-water mark and
	// drain gaps, as the paper's avg-653/peak-1007 profile shows.
	taskN := 0
	addTasks := func(n int) {
		for i := 0; i < n; i++ {
			taskN++
			dur := time.Duration(30+eng.Rand().Intn(60)) * time.Minute
			pool.AddJob(sim.JobSpec{
				ID: fmt.Sprintf("lap%d", taskN), Owner: "mathematician", Cpus: 1, Duration: dur,
			})
		}
	}
	// Total campaign: ~96k subtree tasks averaging one hour ≈ 95,000
	// CPU-hours of work, delivered in 6-hour bursts (the frontier
	// expands, the pool drains, the next wave of subproblems arrives).
	const totalTasks = 96_000
	addTasks(3900)
	refill := eng.Every(6*time.Hour, func(int) {
		if taskN < totalTasks {
			n := totalTasks - taskN
			if n > 3900 {
				n = 3900
			}
			addTasks(n)
		}
	})
	defer refill()

	// GlideIn factory: keep a bounded population of pilots flooded to
	// every site (the paper's worker pool peaked at ~1000); 12h leases,
	// 30-minute idle retirement.
	const maxPilotsAlive = 1010
	requested := 0
	pilotWave := func() {
		if pool.QueueLen() == 0 {
			return
		}
		// Outstanding = requested minus retired: pilots still queued at
		// a site count against the budget, or the flood overshoots.
		alive := requested - pool.PilotsRetired
		if alive >= maxPilotsAlive {
			return
		}
		budget := maxPilotsAlive - alive
		for _, s := range sites {
			// "Monitoring of actual queuing and execution times allows
			// for the tuning of where to submit subsequent jobs": send
			// pilots where free capacity exists instead of piling them
			// onto a backed-up queue.
			want := s.Cpus() * 20 / 100
			if free := s.FreeCpus(); want > free {
				want = free
			}
			if depth := s.QueueDepth(); depth > s.Cpus()/4 {
				want = 0 // site backlogged: probe elsewhere this wave
			}
			if want > budget {
				want = budget
			}
			if want <= 0 {
				continue
			}
			pool.SubmitPilots(s, want, 8*time.Hour, 20*time.Minute)
			requested += want
			budget -= want
		}
	}
	pilotWave()
	stopWaves := eng.Every(30*time.Minute, func(int) {
		if eng.Now() < week {
			pilotWave()
		}
	})
	defer stopWaves()

	if trace {
		stopTrace := eng.Every(2*time.Hour, func(int) {
			free, depth := 0, 0
			for _, s := range sites {
				free += s.FreeCpus()
				depth += s.QueueDepth()
			}
			fmt.Printf("t=%5.1fh active=%4d queue=%5d requested=%5d retired=%5d started=%5d siteFree=%4d siteQ=%5d\n",
				eng.Now().Hours(), m.ActiveCpus(), pool.QueueLen(),
				requested, pool.PilotsRetired, pool.PilotsStarted, free, depth)
		})
		defer stopTrace()
	}

	eng.RunUntil(week)
	// The paper reports the average over the active campaign ("an
	// average of 653 processors being active at any one time" across the
	// run), so normalize CPU-hours by the campaign makespan.
	makespan := m.Makespan()
	avg := 0.0
	if makespan > 0 {
		avg = m.CPUHours() / makespan.Hours()
	}
	return e8Result{
		cpuHours:  m.CPUHours(),
		avgCpus:   avg,
		peakCpus:  m.PeakCpus(),
		tasksDone: len(m.Jobs),
		days:      makespan.Hours() / 24,
	}
}

// BenchmarkE8_MasterWorker — §6.1: "over 95,000 CPU hours ... in less than
// seven days, with an average of 653 processors being active at any one
// time, with a maximum of 1007".
func BenchmarkE8_MasterWorker(b *testing.B) {
	var r e8Result
	for i := 0; i < b.N; i++ {
		r = runE8(2001)
	}
	b.ReportMetric(r.cpuHours, "cpu-hours")
	b.ReportMetric(r.avgCpus, "avg-cpus")
	b.ReportMetric(float64(r.peakCpus), "peak-cpus")
	once("E8", func() {
		fmt.Println("\n=== E8 (§6.1): one simulated week of Master-Worker over GlideIns, 10 sites / 2500 CPUs ===")
		fmt.Printf("%-22s %10s %10s\n", "quantity", "paper", "measured")
		fmt.Printf("%-22s %10s %10.0f\n", "CPU-hours delivered", "95000", r.cpuHours)
		fmt.Printf("%-22s %10s %10.0f\n", "avg concurrent CPUs", "653", r.avgCpus)
		fmt.Printf("%-22s %10s %10d\n", "peak concurrent CPUs", "1007", r.peakCpus)
		fmt.Printf("%-22s %10s %10.1f\n", "elapsed days", "<7", r.days)
		fmt.Printf("%-22s %10s %10d\n", "tasks completed", "-", r.tasksDone)
	})
}

// e9Result carries the §6.2 headline numbers.
type e9Result struct {
	events   int
	cpuHours float64
	days     float64
}

// runE9 simulates the CMS campaign: 100 simulation jobs of 500 events each
// on the Wisconsin pool, per-job GridFTP transfers, then a reconstruction
// job on the NCSA cluster once all data has shipped.
func runE9(seed int64) e9Result {
	eng := events.NewEngine(seed)
	wisc := sim.NewSite(eng, "uw-pool", 80, lrm.FIFO{})
	ncsa := sim.NewSite(eng, "ncsa-pbs", 32, lrm.FIFO{})
	sim.BackgroundLoad{
		MeanInterarrival: 3 * time.Minute, MeanDuration: 2 * time.Hour,
		MaxCpus: 2, Until: 3 * 24 * time.Hour,
	}.Start(eng, wisc)

	m := sim.NewMetrics(eng)
	const simJobs = 100
	const eventsPer = 500
	transferred := 0
	totalEvents := 0
	var recoDone bool
	maybeReco := func() {
		if transferred < simJobs || recoDone {
			return
		}
		recoDone = true
		// Reconstruction: ~8 hours on 16 CPUs of the NCSA cluster.
		ncsa.Submit(sim.JobSpec{
			ID: "reco", Owner: "cms", Cpus: 16, Duration: 8 * time.Hour,
		}, m.OnStart, m.OnDone)
	}
	for i := 0; i < simJobs; i++ {
		i := i
		// Each simulation job: ~10 CPU-hours, 500 events.
		dur := time.Duration(9+eng.Rand().Intn(3)) * time.Hour
		wisc.Submit(sim.JobSpec{
			ID: fmt.Sprintf("sim%d", i), Owner: "cms", Cpus: 1, Duration: dur,
		}, m.OnStart, func(st sim.JobStats) {
			m.OnDone(st)
			totalEvents += eventsPer
			// GridFTP transfer to the repository: ~5 minutes.
			eng.After(5*time.Minute, func() {
				transferred++
				maybeReco()
			})
		})
	}
	eng.RunUntil(5 * 24 * time.Hour)
	return e9Result{events: totalEvents, cpuHours: m.CPUHours(), days: m.Makespan().Hours() / 24}
}

// BenchmarkE9_CMSPipeline — §6.2: "simulate and reconstruct 50,000
// high-energy physics events, consuming 1200 CPU hours in less than a day
// and a half".
func BenchmarkE9_CMSPipeline(b *testing.B) {
	var r e9Result
	for i := 0; i < b.N; i++ {
		r = runE9(2001)
	}
	b.ReportMetric(float64(r.events), "events")
	b.ReportMetric(r.cpuHours, "cpu-hours")
	b.ReportMetric(r.days, "elapsed-days")
	once("E9", func() {
		fmt.Println("\n=== E9 (§6.2): CMS simulation + reconstruction pipeline ===")
		fmt.Printf("%-22s %10s %10s\n", "quantity", "paper", "measured")
		fmt.Printf("%-22s %10s %10d\n", "events produced", "50000", r.events)
		fmt.Printf("%-22s %10s %10.0f\n", "CPU-hours", "1200", r.cpuHours)
		fmt.Printf("%-22s %10s %10.2f\n", "elapsed days", "<1.5", r.days)
	})
}
