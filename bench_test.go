package benchmarks

// Live-system reproductions: these benchmarks drive the real protocol stack
// (TCP + GSI + GRAM/GASS + the agent) end to end on loopback. Each one
// regenerates a figure or protocol guarantee of the paper; see DESIGN.md §3
// and EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condor"
	"condorg/internal/condorg"
	"condorg/internal/credmgr"
	"condorg/internal/gass"
	"condorg/internal/gcat"
	"condorg/internal/glidein"
	"condorg/internal/gram"
	"condorg/internal/gridftp"
	"condorg/internal/gsi"
	"condorg/internal/lrm"
	"condorg/internal/wire"
)

func mustTempDir(b *testing.B, prefix string) string {
	b.Helper()
	dir, err := os.MkdirTemp("", "bench-"+prefix+"-*")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	return dir
}

// benchRuntime counts executions so exactly-once can be asserted.
func benchRuntime(runs *atomic.Int64) *gram.FuncRuntime {
	rt := gram.NewFuncRuntime()
	rt.Register("noop", func(_ context.Context, _ []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		runs.Add(1)
		fmt.Fprintln(stdout, "ok")
		return nil
	})
	rt.Register("linger", func(ctx context.Context, args []string, _ []byte, stdout, _ io.Writer, _ map[string]string) error {
		runs.Add(1)
		d, _ := time.ParseDuration(args[0])
		select {
		case <-time.After(d):
			fmt.Fprintln(stdout, "ok")
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	return rt
}

func benchSite(b *testing.B, name string, runs *atomic.Int64, addr string, stateDir string) *gram.Site {
	b.Helper()
	cluster, err := lrm.NewCluster(lrm.Config{Name: name, Cpus: 8})
	if err != nil {
		b.Fatal(err)
	}
	if stateDir == "" {
		stateDir = mustTempDir(b, "site-"+name)
	}
	site, err := gram.NewSite(gram.SiteConfig{
		Name:           name,
		Cluster:        cluster,
		Runtime:        benchRuntime(runs),
		StateDir:       stateDir,
		GatekeeperAddr: addr,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	return site
}

func benchAgent(b *testing.B, site *gram.Site) *condorg.Agent {
	b.Helper()
	agent, err := condorg.NewAgent(condorg.AgentConfig{
		StateDir: mustTempDir(b, "agent"),
		Selector: condorg.StaticSelector(site.GatekeeperAddr()),
		Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(agent.Close)
	return agent
}

func waitCompleted(b *testing.B, agent *condorg.Agent, id string) condorg.JobInfo {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := agent.Wait(ctx, id)
	if err != nil || info.State != condorg.Completed {
		b.Fatalf("job %s: %v err=%v (%s)", id, info.State, err, info.Error)
	}
	return info
}

// BenchmarkE1_Figure1_RemoteExecution — the complete Figure 1 path per
// iteration: user submit → Scheduler (persistent queue) → GridManager →
// two-phase GRAM submit → Gatekeeper → JobManager → GASS stage-in → local
// scheduler → execution → status callbacks → completion. ns/op is the
// full-path latency of one remote job.
func BenchmarkE1_Figure1_RemoteExecution(b *testing.B) {
	var runs atomic.Int64
	site := benchSite(b, "e1", &runs, "", "")
	agent := benchAgent(b, site)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := agent.Submit(condorg.SubmitRequest{
			Owner: "bench", Executable: gram.Program("noop"),
		})
		if err != nil {
			b.Fatal(err)
		}
		waitCompleted(b, agent, id)
	}
	b.StopTimer()
	if got := runs.Load(); got != int64(b.N) {
		b.Fatalf("ran %d jobs for %d submissions (exactly-once violated)", got, b.N)
	}
	once("E1", func() {
		fmt.Println("\n=== E1 (Figure 1): full remote-execution path on the live protocol stack ===")
		fmt.Println("submit -> persistent queue -> GridManager -> 2PC GRAM -> Gatekeeper ->")
		fmt.Println("JobManager -> GASS stage-in -> LRM -> execute -> callbacks -> done")
	})
}

// BenchmarkE2_Figure2_GlideIn — the Figure 2 path per iteration: a job in
// the personal pool is matchmade onto a glided-in Startd, its Shadow serves
// redirected I/O, the Starter reports completion. The pool (collector,
// negotiator, one pilot glided in through real GRAM+GridFTP) is set up once.
func BenchmarkE2_Figure2_GlideIn(b *testing.B) {
	coll, err := condor.NewCollector(condor.CollectorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { coll.Close() })
	jobRT := condor.NewRuntime()
	jobRT.Register("work", func(_ context.Context, jc *condor.JobContext) error {
		// One redirected system call per job: the Figure 2 I/O path.
		if err := jc.IO.WriteFile("out/"+jc.Args[0], []byte("result")); err != nil {
			return err
		}
		fmt.Fprintln(jc.Stdout, "done")
		return nil
	})
	repo, err := gridftp.NewServer(mustTempDir(b, "repo"), gridftp.ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { repo.Close() })
	ftp := gridftp.NewClient(nil, nil, 2)
	ftp.Put(repo.Addr(), glidein.StartdBlob, []byte("payload"))
	ftp.Close()

	var runs atomic.Int64
	cluster, _ := lrm.NewCluster(lrm.Config{Name: "e2", Cpus: 2})
	siteRT := benchRuntime(&runs)
	glidein.InstallBootstrap(siteRT, jobRT, nil, nil, nil)
	site, err := gram.NewSite(gram.SiteConfig{
		Name: "e2", Cluster: cluster, Runtime: siteRT, StateDir: mustTempDir(b, "e2site"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)

	factory := glidein.NewFactory(glidein.FactoryConfig{
		CollectorAddr:     coll.Addr(),
		RepoAddr:          repo.Addr(),
		Lease:             time.Hour,
		IdleTimeout:       time.Hour,
		AdvertiseInterval: 10 * time.Millisecond,
	})
	b.Cleanup(factory.Close)
	if _, err := factory.SubmitPilot(site.GatekeeperAddr(), "e2"); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for coll.Len() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if coll.Len() < 1 {
		b.Fatal("glidein never joined the pool")
	}
	schedd, err := condor.NewSchedd(condor.ScheddConfig{Name: "bench", SpoolDir: mustTempDir(b, "spool")})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(schedd.Close)
	neg := condor.NewNegotiator(coll.Addr(), nil, nil, schedd)
	b.Cleanup(neg.Stop)
	neg.Start(5 * time.Millisecond)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := schedd.Submit(condor.JobAd("bench", "work", fmt.Sprint(i)))
		if err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			j, _ := schedd.Job(id)
			if j.State == condor.PoolCompleted {
				break
			}
			if j.State.Terminal() || time.Now().After(deadline) {
				b.Fatalf("pool job %s: %v err=%q", id, j.State, j.Err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.StopTimer()
	once("E2", func() {
		fmt.Println("\n=== E2 (Figure 2): GlideIn execution path ===")
		fmt.Println("pilot via GRAM -> GridFTP binary fetch -> Startd joins personal pool ->")
		fmt.Println("matchmaking -> Shadow remote I/O -> Starter completion report")
	})
}

// BenchmarkE3_FaultTolerance — §4.2's four failure types, each as a
// sub-benchmark measuring time from failure injection to verified job
// completion with exactly-once semantics.
func BenchmarkE3_FaultTolerance(b *testing.B) {
	type scenario struct {
		name   string
		inject func(b *testing.B, site *gram.Site, agent *condorg.Agent, id string) (*gram.Site, *condorg.Agent)
	}
	var runsShared atomic.Int64
	scenarios := []scenario{
		{"jobmanager-crash", func(b *testing.B, site *gram.Site, agent *condorg.Agent, id string) (*gram.Site, *condorg.Agent) {
			info, _ := agent.Status(id)
			if err := site.CrashJobManager(info.Contact.JobID); err != nil {
				b.Fatal(err)
			}
			return site, agent
		}},
		{"gatekeeper-machine-crash", func(b *testing.B, site *gram.Site, agent *condorg.Agent, id string) (*gram.Site, *condorg.Agent) {
			site.CrashGatekeeperMachine()
			time.Sleep(80 * time.Millisecond)
			if err := site.RestartGatekeeperMachine(); err != nil {
				b.Fatal(err)
			}
			return site, agent
		}},
		{"network-partition", func(b *testing.B, site *gram.Site, agent *condorg.Agent, id string) (*gram.Site, *condorg.Agent) {
			site.Partition()
			time.Sleep(80 * time.Millisecond)
			site.Heal()
			return site, agent
		}},
		{"submit-machine-crash", func(b *testing.B, site *gram.Site, agent *condorg.Agent, id string) (*gram.Site, *condorg.Agent) {
			stateDir := agentStateDirs[agent]
			agent.Close()
			a2, err := condorg.NewAgent(condorg.AgentConfig{
				StateDir: stateDir,
				Selector: condorg.StaticSelector(site.GatekeeperAddr()),
				Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(a2.Close)
			agentStateDirs[a2] = stateDir
			return site, a2
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				runsShared.Store(0)
				site := benchSite(b, "e3", &runsShared, "", "")
				stateDir := mustTempDir(b, "e3agent")
				agent, err := condorg.NewAgent(condorg.AgentConfig{
					StateDir: stateDir,
					Selector: condorg.StaticSelector(site.GatekeeperAddr()),
					Probe:    condorg.ProbeOptions{Interval: 30 * time.Millisecond},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(agent.Close)
				agentStateDirs[agent] = stateDir
				id, err := agent.Submit(condorg.SubmitRequest{
					Owner: "bench", Executable: gram.Program("linger"), Args: []string{"250ms"},
				})
				if err != nil {
					b.Fatal(err)
				}
				// Wait until running before injecting the failure.
				for {
					info, _ := agent.Status(id)
					if info.State == condorg.Running {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				b.StartTimer()
				site, agent = sc.inject(b, site, agent, id)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				info, err := agent.Wait(ctx, id)
				cancel()
				if err != nil || info.State != condorg.Completed {
					b.Fatalf("%s: %v err=%v (%q)", sc.name, info.State, err, info.Error)
				}
				b.StopTimer()
				if got := runsShared.Load(); got != 1 {
					b.Fatalf("%s: job ran %d times, want exactly once", sc.name, got)
				}
				b.StartTimer()
			}
		})
	}
	once("E3", func() {
		fmt.Println("\n=== E3 (§4.2): all four failure types recovered with exactly-once execution ===")
	})
}

// agentStateDirs lets the submit-machine-crash scenario find the state dir
// to recover from.
var agentStateDirs = map[*condorg.Agent]string{}

// BenchmarkE4_TwoPhaseCommit — §3.2: exactly-once submission under heavy
// message loss. Per iteration one job is submitted through a Gatekeeper
// that drops 30% of requests and 30% of responses; sequence-number retries
// plus the reply cache keep execution exactly-once.
func BenchmarkE4_TwoPhaseCommit(b *testing.B) {
	var runs atomic.Int64
	faults := &wire.Faults{}
	cluster, _ := lrm.NewCluster(lrm.Config{Name: "e4", Cpus: 8})
	site, err := gram.NewSite(gram.SiteConfig{
		Name:             "e4",
		Cluster:          cluster,
		Runtime:          benchRuntime(&runs),
		StateDir:         mustTempDir(b, "e4"),
		GatekeeperFaults: faults,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	drop := int64(0)
	faults.Set(
		func(string) bool { return atomic.AddInt64(&drop, 1)%10 < 3 },
		func(string) bool { return atomic.AddInt64(&drop, 1)%10 < 3 },
	)
	client := gram.NewClient(nil, nil)
	client.SetTimeouts(80*time.Millisecond, 20)
	b.Cleanup(client.Close)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contact, err := client.Submit(site.GatekeeperAddr(), gram.JobSpec{
			Executable: string(gram.Program("noop")),
		}, gram.SubmitOptions{SubmissionID: gram.NewSubmissionID()})
		if err != nil {
			b.Fatal(err)
		}
		if err := client.Commit(contact); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			st, err := client.Status(contact)
			if err == nil && st.State == gram.StateDone {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("job never completed under loss")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	b.StopTimer()
	if got := runs.Load(); got != int64(b.N) {
		b.Fatalf("%d executions for %d submissions under 30%% loss", got, b.N)
	}
	b.ReportMetric(0, "duplicate-executions")
	once("E4", func() {
		fmt.Printf("\n=== E4 (§3.2): two-phase commit under 30%%/30%% request/response loss ===\n")
		fmt.Printf("submissions=%d executions=%d duplicates=0\n", b.N, runs.Load())
	})
}

// BenchmarkE5_Credentials — §3.1/§4.3 credential machinery: proxy creation,
// chain verification, auth-token round-trip, delegation, and the full
// MyProxy renewal RPC.
func BenchmarkE5_Credentials(b *testing.B) {
	now := time.Now()
	ca, err := gsi.NewCA("/O=Grid/CN=CA", now, 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	user, _ := ca.IssueUser("/O=Grid/CN=bench", now, 12*time.Hour)
	proxy, _ := gsi.NewProxy(user, now, time.Hour)

	b.Run("new-proxy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gsi.NewProxy(user, now, time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verify-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gsi.VerifyChain(proxy.Chain, ca.Certificate(), now); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("auth-token-roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tok, err := gsi.NewAuthToken(proxy, "bench", now)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tok.Verify(ca.Certificate(), "bench", now); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("myproxy-renewal", func(b *testing.B) {
		srv, err := credmgr.NewMyProxyServer(credmgr.MyProxyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		mc := credmgr.NewMyProxyClient(srv.Addr(), nil, nil)
		defer mc.Close()
		long, _ := gsi.NewProxy(user, now, 10*time.Hour)
		if err := mc.Store("bench", "pw", long); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mc.Get("bench", "pw", time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10_GCat — §6.3: G-Cat end-to-end throughput shipping a growing
// output file to MSS through the local scratch buffer, and the latency for
// a user to see fresh partial output.
func BenchmarkE10_GCat(b *testing.B) {
	b.Run("ship-throughput", func(b *testing.B) {
		mss, err := gcat.NewMSS(gcat.MSSOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer mss.Close()
		dir := mustTempDir(b, "gcat")
		src := filepath.Join(dir, "out")
		os.WriteFile(src, nil, 0o600)
		g, err := gcat.NewGCat(gcat.GCatConfig{
			SourcePath: src, MSSAddr: mss.Addr(), RemoteName: "out",
			ChunkSize: 16 << 10, Poll: time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		g.Start()
		defer g.Stop(10 * time.Second)
		payload := []byte(strings.Repeat("SCF cycle data line\n", 512)) // ~10 KiB
		f, _ := os.OpenFile(src, os.O_WRONLY|os.O_APPEND, 0)
		defer f.Close()
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Write(payload)
			want := int64(len(payload)) * int64(i+1)
			for {
				_, shipped := g.Progress()
				if shipped >= want {
					break
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	})
	b.Run("partial-view-read", func(b *testing.B) {
		mss, _ := gcat.NewMSS(gcat.MSSOptions{})
		defer mss.Close()
		c := gcat.NewMSSClient(mss.Addr(), nil, nil)
		defer c.Close()
		for i := 0; i < 64; i++ {
			c.PutChunk("f", i, []byte(strings.Repeat("x", 4096)))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Read("f"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Sanity reference: the raw GASS streaming path the JobManager uses.
func BenchmarkGASSAppendThroughput(b *testing.B) {
	srv, err := gass.NewServer(mustTempDir(b, "gass"), gass.ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := gass.NewClient(nil, nil)
	defer c.Close()
	u := srv.URLFor("stream")
	payload := []byte(strings.Repeat("x", 16<<10))
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Append(u, payload); err != nil {
			b.Fatal(err)
		}
	}
}
