package benchmarks

// Stage-in throughput: what the chunked push plane and the per-site
// executable cache buy over the old pull-on-demand path. Every remote
// request — gatekeeper ops AND reads against the agent's GASS spool —
// carries the simulated WAN latency, so the serial configuration pays one
// round trip per 64KiB chunk of every job's executable, while the cached
// configuration moves the bytes once and answers every later job with a
// single stage-check RPC.
//
//	serial   staging disabled: every job's site pulls the executable
//	chunked  staging on, every job carries a unique binary (pure push)
//	cached   staging on, all jobs share one binary (push once, then hit)

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"condorg/internal/condorg"
	"condorg/internal/faultclass"
	"condorg/internal/gram"
	"condorg/internal/wire"
)

// stageExecSize is the benchmark executable size: 16 chunks at the default
// 64KiB chunk size, so both pull and push span several round trips.
const stageExecSize = 1 << 20

// stageExec builds a runnable noop program padded to stageExecSize whose
// content (and therefore hash) is unique per tag — or shared, when the
// same tag is reused.
func stageExec(tag string) []byte {
	prog := append(gram.Program("noop"), []byte(tag)...)
	pad := make([]byte, stageExecSize-len(prog))
	for i := range pad {
		pad[i] = byte(i)
	}
	return append(prog, pad...)
}

func runStageIn(b *testing.B, mode string) {
	var runs atomic.Int64
	site := benchDelaySite(b, "stage-"+mode, &runs, nil)

	// Reads against the agent's spool cross the WAN (the site pulls from
	// the submit machine), as do the site's stdout appends. The agent's
	// own spool writes are machine-local and stay fast.
	gassFaults := &wire.Faults{}
	gassFaults.SetDelay(func(m string) time.Duration {
		if m == "gass.read" || m == "gass.append" || m == "gass.stat" {
			return wanDelay
		}
		return 0
	})

	cfg := condorg.AgentConfig{
		StateDir: mustTempDir(b, "stage-agent-"+mode),
		Selector: condorg.StaticSelector(site.GatekeeperAddr()),
		Probe:    condorg.ProbeOptions{Interval: 20 * time.Millisecond},
		// Wide pipeline so both modes ramp the full batch; the comparison
		// is transfer strategy, not pipeline shape.
		Pipeline: condorg.PipelineOptions{PerSiteInFlight: 16, MaxInFlight: 64},
		Stage:    condorg.StageOptions{Streams: 16},
		Faults:   condorg.FaultOptions{GASS: gassFaults},
		Breaker: faultclass.BreakerConfig{
			Threshold: 1000,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
		},
	}
	if mode == "serial" {
		cfg.Stage.Disabled = true
	}
	agent, err := condorg.NewAgent(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(agent.Close)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]string, 0, multiSiteBatch)
		for j := 0; j < multiSiteBatch; j++ {
			tag := "shared"
			if mode == "chunked" {
				// Unique content per job and iteration: every transfer is
				// a genuine push, never a cache hit.
				tag = fmt.Sprintf("unique-%d-%d", i, j)
			}
			id, err := agent.Submit(condorg.SubmitRequest{
				Owner: "bench", Executable: stageExec(tag),
			})
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			waitCompleted(b, agent, id)
		}
	}
	b.StopTimer()
	if got := runs.Load(); got != int64(multiSiteBatch*b.N) {
		b.Fatalf("ran %d jobs for %d submissions (exactly-once violated)", got, multiSiteBatch*b.N)
	}
	jobs := float64(multiSiteBatch * b.N)
	b.ReportMetric(jobs/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(jobs*stageExecSize/(1<<20)/b.Elapsed().Seconds(), "MBstaged/s")
}

// BenchmarkStageIn — 16-job batches against one site under a simulated
// WAN, comparing the pull path (staging disabled), pure chunked pushes
// (unique binaries), and the content-addressed cache (shared binary).
func BenchmarkStageIn(b *testing.B) {
	for _, mode := range []string{"serial", "chunked", "cached"} {
		b.Run(mode, func(b *testing.B) { runStageIn(b, mode) })
	}
	once("ST", func() {
		fmt.Println("\n=== StageIn: chunked push + per-site executable cache vs pull-on-demand ===")
		fmt.Println("1MiB executables, 5ms simulated WAN latency per request; 'cached' shares")
		fmt.Println("one binary across the batch and should beat 'serial' by >=2x")
	})
}
